//! Small closed-form graphs used throughout the test suites: their
//! community structure and modularity are known analytically, which makes
//! them ideal differential-testing fixtures.

use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};

/// Complete graph `K_n`, unit weights.
pub fn complete(n: usize) -> Csr {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            b.push_undirected(u, v, 1.0);
        }
    }
    b.build()
}

/// Cycle `C_n` (requires `n >= 3`), unit weights.
pub fn cycle(n: usize) -> Csr {
    assert!(n >= 3, "cycle requires at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        b.push_undirected(u as VertexId, ((u + 1) % n) as VertexId, 1.0);
    }
    b.build()
}

/// Path `P_n` with `n` vertices and `n - 1` edges.
pub fn path(n: usize) -> Csr {
    let mut b = GraphBuilder::new(n);
    for u in 1..n {
        b.push_undirected((u - 1) as VertexId, u as VertexId, 1.0);
    }
    b.build()
}

/// Star with one hub (vertex 0) and `n - 1` leaves.
pub fn star(n: usize) -> Csr {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(n);
    for v in 1..n as VertexId {
        b.push_undirected(0, v, 1.0);
    }
    b.build()
}

/// Connected caveman graph: `k` cliques of size `s`, neighbouring cliques
/// joined by a single edge in a ring. A classic high-modularity fixture.
pub fn caveman(k: usize, s: usize) -> Csr {
    caveman_weighted(k, s, 1.0)
}

/// [`caveman`] with a configurable bridge weight. Bridges lighter than the
/// unit intra-clique edges (e.g. `0.5`) remove the weight ties at bridge
/// endpoints, making the planted partition the unique LPA fixed point —
/// the fixture used wherever tests assert *exact* community recovery.
pub fn caveman_weighted(k: usize, s: usize, bridge_weight: f32) -> Csr {
    assert!(k >= 1 && s >= 2);
    let n = k * s;
    let mut b = GraphBuilder::new(n);
    for c in 0..k {
        let base = (c * s) as VertexId;
        for i in 0..s as VertexId {
            for j in (i + 1)..s as VertexId {
                b.push_undirected(base + i, base + j, 1.0);
            }
        }
    }
    if k == 2 {
        // A 2-ring would lay the same bridge twice; lay it once.
        b.push_undirected(0, s as VertexId, bridge_weight);
    } else if k > 2 {
        for c in 0..k {
            let a = (c * s) as VertexId;
            let bnext = (((c + 1) % k) * s) as VertexId;
            b.push_undirected(a, bnext, bridge_weight);
        }
    }
    b.build()
}

/// Two `s`-cliques connected by a single bridge edge. The optimal
/// partition is the two cliques; LPA finds it reliably.
pub fn two_cliques_bridge(s: usize) -> Csr {
    caveman(2, s)
}

/// [`two_cliques_bridge`] with a light (weight-0.5) bridge: the planted
/// partition is the unique LPA fixed point (no weight ties at the bridge).
pub fn two_cliques_light_bridge(s: usize) -> Csr {
    caveman_weighted(2, s, 0.5)
}

/// Ground-truth labels for [`caveman`]/[`two_cliques_bridge`]: vertex `v`
/// belongs to clique `v / s`.
pub fn caveman_ground_truth(k: usize, s: usize) -> Vec<VertexId> {
    (0..k * s).map(|v| (v / s) as VertexId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_degrees() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 20);
        for u in g.vertices() {
            assert_eq!(g.degree(u), 4);
        }
    }

    #[test]
    fn cycle_degrees() {
        let g = cycle(7);
        assert_eq!(g.num_edges(), 14);
        for u in g.vertices() {
            assert_eq!(g.degree(u), 2);
        }
    }

    #[test]
    fn path_endpoints() {
        let g = path(5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(4), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.num_edges(), 8);
    }

    #[test]
    fn star_hub() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        for v in 1..6 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn single_vertex_star() {
        let g = star(1);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn caveman_structure() {
        let g = caveman(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // each clique: 4*3/2 = 6 undirected + 3 ring edges = 21 undirected
        assert_eq!(g.num_edges(), 2 * (3 * 6 + 3));
        assert!(g.is_symmetric());
    }

    #[test]
    fn two_cliques_bridge_counts() {
        let g = two_cliques_bridge(4);
        assert_eq!(g.num_vertices(), 8);
        // 2 cliques * 6 undirected edges + 1 bridge = 13 undirected = 26 directed
        assert_eq!(g.num_edges(), 26);
        assert_eq!(g.edge_weight(0, 4), Some(1.0));
    }

    #[test]
    fn ground_truth_shape() {
        let t = caveman_ground_truth(3, 4);
        assert_eq!(t.len(), 12);
        assert_eq!(t[0], 0);
        assert_eq!(t[4], 1);
        assert_eq!(t[11], 2);
    }
}
