//! Preferential-attachment (Barabási–Albert) generator.
//!
//! Stand-in for the paper's LAW web crawls (indochina-2004, uk-2002, …):
//! heavy-tailed degree distribution, high local clustering (via a
//! triangle-closing step), and — crucially for LPA — vertex ids that
//! correlate with attachment time, like crawl order in web graphs. The
//! paper's Pick-Less method exploits low-ID "leader" vertices, so the
//! id/degree correlation matters for faithful behaviour.

use super::rng;
use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use rand::Rng;

/// Barabási–Albert graph: starts from a small seed clique, then each new
/// vertex attaches to `m_attach` existing vertices chosen preferentially
/// by degree. With probability `closure_p` an attachment instead closes a
/// triangle with a neighbour of the previous target (Holme–Kim step),
/// which raises clustering to web-graph levels.
///
/// # Panics
/// Panics if `n < m_attach + 1` or `m_attach == 0`.
pub fn barabasi_albert(n: usize, m_attach: usize, closure_p: f64, seed: u64) -> Csr {
    barabasi_albert_local(n, m_attach, closure_p, usize::MAX, seed)
}

/// [`barabasi_albert`] with *crawl locality*: attachment targets are
/// sampled (preferentially by degree) from only the most recent `window`
/// endpoint entries. Web crawls visit sites in bursts, so consecutive ids
/// link densely to each other — that locality is what gives real LAW
/// graphs their pronounced community structure (paper Fig. 6c shows LPA
/// reaching high modularity on web crawls, which a plain BA graph cannot
/// reproduce: it has no communities at all). `window = usize::MAX`
/// recovers global preferential attachment.
pub fn barabasi_albert_local(
    n: usize,
    m_attach: usize,
    closure_p: f64,
    window: usize,
    seed: u64,
) -> Csr {
    assert!(m_attach >= 1, "attachment count must be positive");
    assert!(n > m_attach, "need more vertices than attachments");
    assert!((0.0..=1.0).contains(&closure_p));
    assert!(window >= 1, "locality window must be positive");
    let mut r = rng(seed);
    // an endpoint entry is pushed per edge end; a window of `window`
    // vertices spans about `2 * m_attach * window` entries
    let entry_window = window.saturating_mul(2 * m_attach);
    let pick = |r: &mut rand_chacha::ChaCha8Rng, ends: &Vec<VertexId>| -> VertexId {
        let lo = ends.len().saturating_sub(entry_window);
        ends[r.gen_range(lo..ends.len())]
    };

    // `ends` holds one entry per edge endpoint; sampling uniformly from it
    // is sampling proportionally to degree.
    let mut ends: Vec<VertexId> = Vec::with_capacity(2 * n * m_attach);
    let mut b = GraphBuilder::new(n).reserve(2 * n * m_attach);

    let seed_sz = m_attach + 1;
    for u in 0..seed_sz as VertexId {
        for v in (u + 1)..seed_sz as VertexId {
            b.push_undirected(u, v, 1.0);
            ends.push(u);
            ends.push(v);
        }
    }

    let mut chosen: Vec<VertexId> = Vec::with_capacity(m_attach);
    for u in seed_sz..n {
        let u = u as VertexId;
        chosen.clear();
        let mut last: Option<VertexId> = None;
        while chosen.len() < m_attach {
            let t = if let (Some(prev), true) = (last, r.gen_bool(closure_p)) {
                // triangle closure: pick a random endpoint entry of `prev`;
                // approximated by rejection from the (windowed) ends list.
                let mut cand = pick(&mut r, &ends);
                for _ in 0..4 {
                    if cand != prev {
                        break;
                    }
                    cand = pick(&mut r, &ends);
                }
                cand
            } else {
                pick(&mut r, &ends)
            };
            if t == u || chosen.contains(&t) {
                continue;
            }
            chosen.push(t);
            last = Some(t);
        }
        for &t in &chosen {
            b.push_undirected(u, t, 1.0);
            ends.push(u);
            ends.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let g = barabasi_albert(200, 3, 0.3, 1);
        assert_eq!(g.num_vertices(), 200);
        // seed clique K4 has 6 undirected edges; each of the 196 newcomers adds 3.
        assert_eq!(g.num_edges(), 2 * (6 + 196 * 3));
        assert!(g.is_symmetric());
    }

    #[test]
    fn heavy_tail_exists() {
        let g = barabasi_albert(500, 2, 0.0, 42);
        // preferential attachment must create hubs well above the mean degree
        let mean = g.avg_degree();
        assert!(
            g.max_degree() as f64 > 4.0 * mean,
            "max {} vs mean {mean}",
            g.max_degree()
        );
    }

    #[test]
    fn early_vertices_are_hubs() {
        let g = barabasi_albert(1000, 2, 0.0, 3);
        let early: usize = (0..10).map(|u| g.degree(u)).sum();
        let late: usize = (990..1000).map(|u| g.degree(u as VertexId)).sum();
        assert!(early > 3 * late, "early {early} late {late}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            barabasi_albert(100, 3, 0.5, 9),
            barabasi_albert(100, 3, 0.5, 9)
        );
    }

    #[test]
    fn minimal_size() {
        let g = barabasi_albert(4, 3, 0.0, 0);
        assert_eq!(g.num_vertices(), 4); // seed clique K4 exactly
        assert_eq!(g.num_edges(), 12);
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn rejects_tiny_n() {
        barabasi_albert(3, 3, 0.0, 0);
    }

    #[test]
    fn locality_window_creates_id_locality() {
        let global = barabasi_albert(2000, 4, 0.3, 7);
        let local = barabasi_albert_local(2000, 4, 0.3, 50, 7);
        // mean |u - v| over edges should be far smaller with a window
        let mean_span = |g: &Csr| -> f64 {
            let mut total = 0f64;
            let mut cnt = 0usize;
            for u in g.vertices() {
                for (v, _) in g.neighbors(u) {
                    total += (u as f64 - v as f64).abs();
                    cnt += 1;
                }
            }
            total / cnt as f64
        };
        assert!(mean_span(&local) * 4.0 < mean_span(&global));
    }

    #[test]
    fn locality_window_has_detectable_communities() {
        // windowed attachment yields modular structure (real web crawls do)
        let g = barabasi_albert_local(1000, 4, 0.5, 40, 3);
        assert_eq!(g.num_vertices(), 1000);
        assert!(g.is_symmetric());
        assert!(g.max_degree() > 8); // still heavy-tailed locally
    }

    #[test]
    fn max_window_equals_plain_ba() {
        assert_eq!(
            barabasi_albert(300, 3, 0.2, 9),
            barabasi_albert_local(300, 3, 0.2, usize::MAX, 9)
        );
    }
}
