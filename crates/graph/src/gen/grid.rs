//! 2-D lattice ("road network") generator.
//!
//! Stand-in for the paper's DIMACS10 road networks (asia_osm, europe_osm):
//! average degree ≈ 2.1, enormous diameter, near-planar. We generate a
//! rows×cols lattice and then delete a fraction of edges to thin the mesh
//! down to road-network density, keeping determinism via the seed.

use super::rng;
use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use rand::Rng;

/// `rows × cols` grid; each vertex connects to its right and down
/// neighbour, and each such edge is *kept* with probability `keep_p`
/// (`keep_p = 1.0` gives the full lattice). Unit weights.
pub fn grid2d(rows: usize, cols: usize, keep_p: f64, seed: u64) -> Csr {
    assert!(rows >= 1 && cols >= 1);
    assert!((0.0..=1.0).contains(&keep_p));
    let n = rows * cols;
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n);
    let id = |y: usize, x: usize| (y * cols + x) as VertexId;
    for y in 0..rows {
        for x in 0..cols {
            if x + 1 < cols && r.gen_bool(keep_p) {
                b.push_undirected(id(y, x), id(y, x + 1), 1.0);
            }
            if y + 1 < rows && r.gen_bool(keep_p) {
                b.push_undirected(id(y, x), id(y + 1, x), 1.0);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_lattice_edge_count() {
        let g = grid2d(4, 5, 1.0, 0);
        assert_eq!(g.num_vertices(), 20);
        // horizontal: 4 rows * 4 = 16; vertical: 3 * 5 = 15 => 31 undirected
        assert_eq!(g.num_edges(), 62);
    }

    #[test]
    fn corner_degrees() {
        let g = grid2d(3, 3, 1.0, 0);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(4), 4); // center
    }

    #[test]
    fn thinning_reduces_density() {
        let full = grid2d(30, 30, 1.0, 1);
        let thin = grid2d(30, 30, 0.55, 1);
        assert!(thin.num_edges() < full.num_edges());
        assert!(thin.num_edges() > 0);
    }

    #[test]
    fn road_like_density() {
        // keep_p tuned so that D_avg lands near the paper's 2.1
        let g = grid2d(100, 100, 0.55, 7);
        let d = g.avg_degree();
        assert!((1.8..=2.5).contains(&d), "avg degree {d}");
    }

    #[test]
    fn single_row_is_a_path() {
        let g = grid2d(1, 6, 1.0, 0);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(3), 2);
    }

    #[test]
    fn deterministic() {
        assert_eq!(grid2d(10, 10, 0.7, 5), grid2d(10, 10, 0.7, 5));
    }
}
