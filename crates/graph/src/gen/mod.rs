//! Deterministic (seeded) synthetic graph generators.
//!
//! These stand in for the paper's SuiteSparse datasets (see DESIGN.md §1):
//! each generator family is matched to one dataset category by degree
//! distribution, diameter, and community structure. All generators take an
//! explicit seed and are reproducible across runs and platforms
//! (they use `ChaCha8Rng`, whose stream is specified).

mod ba;
mod classic;
mod erdos;
mod grid;
mod kmer;
mod planted;
mod rmat;
mod web;

pub use ba::{barabasi_albert, barabasi_albert_local};
pub use classic::{
    caveman, caveman_ground_truth, caveman_weighted, complete, cycle, path, star,
    two_cliques_bridge, two_cliques_light_bridge,
};
pub use erdos::erdos_renyi;
pub use grid::grid2d;
pub use kmer::kmer_chain;
pub use planted::{planted_partition, PlantedPartition};
pub use rmat::{rmat, RmatParams};
pub use web::{web_crawl, web_crawl_hosts};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub(crate) fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}
