//! R-MAT (recursive matrix) generator, Graph500 style.
//!
//! Used for scale-free stress graphs with extreme skew — a second web/social
//! stand-in and the standard workload for GPU graph-framework comparisons
//! (Gunrock's own benchmarks use R-MAT inputs).

use super::rng;
use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use rand::Rng;

/// R-MAT quadrant probabilities. Must sum to 1 (±1e-6).
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
}

impl RmatParams {
    /// Graph500 reference parameters.
    pub fn graph500() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

impl Default for RmatParams {
    fn default() -> Self {
        Self::graph500()
    }
}

/// Generate an R-MAT graph with `2^scale` vertices and `edge_factor *
/// 2^scale` sampled (directed) edges, then symmetrized and deduplicated.
/// Unit weights; self loops dropped.
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> Csr {
    assert!((1..31).contains(&scale));
    let sum = params.a + params.b + params.c + params.d;
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "quadrant probabilities must sum to 1"
    );
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut r = rng(seed);
    let mut b = GraphBuilder::new(n).reserve(2 * m);
    for _ in 0..m {
        let mut u = 0usize;
        let mut v = 0usize;
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let x: f64 = r.gen();
            if x < params.a {
                // top-left: no bits set
            } else if x < params.a + params.b {
                v |= 1;
            } else if x < params.a + params.b + params.c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            b.push_undirected(u as VertexId, v as VertexId, 1.0);
        }
    }
    // Duplicates merge via the default SumWeights policy; reset weights to 1
    // afterwards to keep the graph unweighted like Graph500.
    let g = b.build();
    let weights = vec![1.0; g.num_edges()];
    Csr::from_raw(g.offsets().to_vec(), g.targets().to_vec(), weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_count_is_power_of_two() {
        let g = rmat(8, 4, RmatParams::graph500(), 1);
        assert_eq!(g.num_vertices(), 256);
        assert!(g.num_edges() > 0);
        assert!(g.is_symmetric());
    }

    #[test]
    fn skew_produces_hubs() {
        let g = rmat(10, 8, RmatParams::graph500(), 2);
        assert!(g.max_degree() as f64 > 5.0 * g.avg_degree());
    }

    #[test]
    fn unit_weights_after_dedup() {
        let g = rmat(6, 16, RmatParams::graph500(), 3);
        assert!(g.weights().iter().all(|&w| w == 1.0));
    }

    #[test]
    fn uniform_params_flatten_skew() {
        let p = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
        };
        let skewed = rmat(10, 8, RmatParams::graph500(), 4);
        let flat = rmat(10, 8, p, 4);
        assert!(flat.max_degree() < skewed.max_degree());
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            rmat(7, 4, RmatParams::graph500(), 5),
            rmat(7, 4, RmatParams::graph500(), 5)
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_params() {
        rmat(
            5,
            2,
            RmatParams {
                a: 0.5,
                b: 0.5,
                c: 0.5,
                d: 0.5,
            },
            0,
        );
    }
}
