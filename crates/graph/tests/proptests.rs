//! Property-based tests for the graph substrate.

use nulpa_graph::gen;
use nulpa_graph::io::{read_edge_list, write_edge_list};
use nulpa_graph::permute::{random_permutation, relabel};
use nulpa_graph::{Csr, GraphBuilder};
use proptest::prelude::*;
use std::io::Cursor;

fn arb_edges(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32, f32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        (
            Just(n),
            proptest::collection::vec((0..n as u32, 0..n as u32, 0.1f32..9.0), 0..max_m),
        )
    })
}

fn build(n: usize, edges: &[(u32, u32, f32)]) -> Csr {
    GraphBuilder::new(n)
        .add_undirected_edges(edges.iter().copied().filter(|(u, v, _)| u != v))
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn built_graphs_validate_and_are_symmetric((n, edges) in arb_edges(50, 200)) {
        let g = build(n, &edges);
        prop_assert!(g.validate().is_ok());
        prop_assert!(g.is_symmetric());
        prop_assert_eq!(g.num_self_loops(), 0);
    }

    #[test]
    fn degree_sum_equals_edge_count((n, edges) in arb_edges(50, 200)) {
        let g = build(n, &edges);
        let sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, g.num_edges());
    }

    #[test]
    fn total_weight_is_twice_undirected_sum((n, edges) in arb_edges(40, 120)) {
        let g = build(n, &edges);
        let mut undirected = 0.0f64;
        for u in g.vertices() {
            for (v, w) in g.neighbors(u) {
                if v >= u {
                    undirected += w as f64;
                }
            }
        }
        prop_assert!((g.total_weight() - 2.0 * undirected).abs() < 1e-3);
    }

    #[test]
    fn symmetrize_gives_structural_symmetry((n, edges) in arb_edges(30, 80)) {
        // symmetrize's contract: every stored edge has a reverse (weights
        // of pre-existing opposite directions are preserved, so *weight*
        // symmetry is only guaranteed when no opposite pair pre-exists)
        let g = GraphBuilder::new(n)
            .add_edges(edges.iter().copied().filter(|(u, v, _)| u != v))
            .symmetrize()
            .build();
        for u in g.vertices() {
            for (v, _) in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u), "missing reverse of ({}, {})", u, v);
            }
        }
    }

    #[test]
    fn symmetrize_without_preexisting_reverses_is_weight_symmetric(
        (n, edges) in arb_edges(30, 80)
    ) {
        // feed only canonical directions (u < v): then full weight symmetry
        let g = GraphBuilder::new(n)
            .add_edges(
                edges
                    .iter()
                    .copied()
                    .filter(|(u, v, _)| u != v)
                    .map(|(u, v, w)| (u.min(v), u.max(v), w)),
            )
            .symmetrize()
            .build();
        prop_assert!(g.is_symmetric());
    }

    #[test]
    fn relabel_roundtrip((n, edges) in arb_edges(40, 120), seed in 0u64..500) {
        let g = build(n, &edges);
        let perm = random_permutation(n, seed);
        // inverse permutation
        let mut inv = vec![0u32; n];
        for (v, &p) in perm.iter().enumerate() {
            inv[p as usize] = v as u32;
        }
        let there = relabel(&g, &perm);
        let back = relabel(&there, &inv);
        prop_assert_eq!(back, g);
    }

    #[test]
    fn edge_list_roundtrip((n, edges) in arb_edges(30, 100)) {
        let g = build(n, &edges);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf), Some(n), false).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn erdos_renyi_respects_parameters(n in 10usize..80, seed in 0u64..100) {
        let m = n; // sparse
        let g = gen::erdos_renyi(n, m, seed);
        prop_assert_eq!(g.num_edges(), 2 * m);
        prop_assert!(g.is_symmetric());
    }

    #[test]
    fn planted_partition_truth_is_consistent(
        a in 5usize..40, b in 5usize..40, seed in 0u64..50
    ) {
        let pp = gen::planted_partition(&[a, b], 4.0, 1.0, seed);
        prop_assert_eq!(pp.ground_truth.len(), a + b);
        prop_assert!(pp.ground_truth[..a].iter().all(|&c| c == 0));
        prop_assert!(pp.ground_truth[a..].iter().all(|&c| c == 1));
        prop_assert!(pp.graph.validate().is_ok());
    }

    #[test]
    fn web_crawl_hosts_match_graph(n in 50usize..400, seed in 0u64..30) {
        let g = gen::web_crawl(n, 4, 0.1, seed);
        let hosts = gen::web_crawl_hosts(n, seed);
        prop_assert_eq!(g.num_vertices(), hosts.len());
    }

    #[test]
    fn grid_dimensions(rows in 1usize..20, cols in 1usize..20) {
        let g = gen::grid2d(rows, cols, 1.0, 0);
        prop_assert_eq!(g.num_vertices(), rows * cols);
        let expected = rows * (cols - 1) + cols * (rows - 1);
        prop_assert_eq!(g.num_edges(), 2 * expected);
    }
}
