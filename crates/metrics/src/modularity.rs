//! Modularity (Eq. 1) and delta-modularity (Eq. 2) of the paper.
//!
//! Conventions: graphs are stored symmetrized (each undirected edge twice),
//! so the *directed* total weight equals `2m`. All accumulation is in
//! `f64` regardless of the graph's `f32` edge weights — quality numbers
//! must not depend on the hashtable datatype ablation (Fig. 5).

use nulpa_graph::{Csr, VertexId};
use rayon::prelude::*;

/// Modularity `Q` of the partition `labels` on graph `g`, per Eq. 1:
///
/// `Q = Σ_c [ σ_c / 2m − (Σ_c / 2m)² ]`
///
/// where `σ_c` is the total weight of intra-community directed edges and
/// `Σ_c` the total directed weight incident to community `c`.
///
/// Returns 0 for an edgeless graph (no structure to score).
///
/// # Panics
/// Panics if `labels.len() != |V|` or any label is out of range.
pub fn modularity(g: &Csr, labels: &[VertexId]) -> f64 {
    let n = g.num_vertices();
    assert_eq!(labels.len(), n, "labels length mismatch");
    let two_m = g.total_weight();
    if two_m == 0.0 {
        return 0.0;
    }
    // σ_c and Σ_c accumulated per community.
    let mut sigma_in = vec![0.0f64; n];
    let mut sigma_tot = vec![0.0f64; n];
    for u in g.vertices() {
        let cu = labels[u as usize] as usize;
        assert!(cu < n, "label {cu} out of range");
        for (v, w) in g.neighbors(u) {
            let w = w as f64;
            sigma_tot[cu] += w;
            if labels[v as usize] == cu as VertexId {
                sigma_in[cu] += w;
            }
        }
    }
    sigma_in
        .iter()
        .zip(&sigma_tot)
        .map(|(&si, &st)| si / two_m - (st / two_m) * (st / two_m))
        .sum()
}

/// Parallel version of [`modularity`], used by the harness on the larger
/// stand-ins. Numerically: per-community sums are formed with the same
/// pairing, then reduced; results match the sequential version to within
/// f64 rounding.
pub fn modularity_par(g: &Csr, labels: &[VertexId]) -> f64 {
    let n = g.num_vertices();
    assert_eq!(labels.len(), n, "labels length mismatch");
    let two_m = g.total_weight();
    if two_m == 0.0 {
        return 0.0;
    }
    let (sigma_in, sigma_tot) = (0..n as u32)
        .into_par_iter()
        .fold(
            || (vec![0.0f64; n], vec![0.0f64; n]),
            |(mut si, mut st), u| {
                let cu = labels[u as usize] as usize;
                assert!(cu < n, "label {cu} out of range");
                for (v, w) in g.neighbors(u) {
                    let w = w as f64;
                    st[cu] += w;
                    if labels[v as usize] == cu as VertexId {
                        si[cu] += w;
                    }
                }
                (si, st)
            },
        )
        .reduce(
            || (vec![0.0f64; n], vec![0.0f64; n]),
            |(mut a1, mut a2), (b1, b2)| {
                for i in 0..n {
                    a1[i] += b1[i];
                    a2[i] += b2[i];
                }
                (a1, a2)
            },
        );
    sigma_in
        .iter()
        .zip(&sigma_tot)
        .map(|(&si, &st)| si / two_m - (st / two_m) * (st / two_m))
        .sum()
}

/// Modularity from already-accumulated per-community sums — the Eq. 1
/// fold shared with incrementally maintained trajectories (the
/// `nulpa-telemetry` convergence recorder keeps `σ_c`/`Σ_c` up to date
/// across label moves and re-scores with this).
///
/// `sigma_in[c]` is the total weight of intra-community *directed* edges
/// of community `c`, `sigma_tot[c]` the total directed weight incident to
/// it, and `two_m` the directed total weight of the graph. Returns 0 when
/// `two_m` is 0.
pub fn modularity_from_sums(sigma_in: &[f64], sigma_tot: &[f64], two_m: f64) -> f64 {
    assert_eq!(sigma_in.len(), sigma_tot.len(), "sum length mismatch");
    if two_m == 0.0 {
        return 0.0;
    }
    sigma_in
        .iter()
        .zip(sigma_tot)
        .map(|(&si, &st)| si / two_m - (st / two_m) * (st / two_m))
        .sum()
}

/// Delta modularity of moving vertex `i` from community `d` to `c`
/// (Eq. 2):
///
/// `ΔQ = (K_{i→c} − K_{i→d}) / m − K_i (K_i + Σ_c − Σ_d) / 2m²`
///
/// `k_to_c`/`k_to_d` are `K_{i→c}`/`K_{i→d}` *excluding* any self loop;
/// `sigma_c`/`sigma_d` are the total directed weights Σ of the target and
/// source communities *excluding vertex i's own contribution from Σ_d*...
/// Specifically, following the paper's Eq. 2, `sigma_d` must include `K_i`
/// (vertex `i` still in `d`) and `sigma_c` must not.
pub fn delta_modularity(
    k_i: f64,
    k_to_c: f64,
    k_to_d: f64,
    sigma_c: f64,
    sigma_d: f64,
    two_m: f64,
) -> f64 {
    let m = two_m / 2.0;
    (k_to_c - k_to_d) / m - k_i * (k_i + sigma_c - sigma_d) / (2.0 * m * m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_graph::gen::{caveman, caveman_ground_truth, complete, cycle, two_cliques_bridge};
    use nulpa_graph::{Csr, GraphBuilder};

    fn singleton_labels(n: usize) -> Vec<VertexId> {
        (0..n as VertexId).collect()
    }

    #[test]
    fn all_in_one_community_is_zero() {
        let g = complete(6);
        let labels = vec![0; 6];
        let q = modularity(&g, &labels);
        assert!(q.abs() < 1e-12, "Q = {q}");
    }

    #[test]
    fn singletons_on_complete_graph_negative() {
        let g = complete(6);
        let q = modularity(&g, &singleton_labels(6));
        assert!(q < 0.0);
    }

    #[test]
    fn two_cliques_optimal_partition() {
        let g = two_cliques_bridge(5);
        let labels = caveman_ground_truth(2, 5);
        let q = modularity(&g, &labels);
        // 2 cliques of 10 edges + bridge: 2m = 42.
        // σ_c = 20 each, Σ_c = 21 each → Q = 2*(20/42 - (21/42)^2) = 40/42 - 0.5
        let expected = 40.0 / 42.0 - 0.5;
        assert!((q - expected).abs() < 1e-9, "Q = {q}, expected {expected}");
    }

    #[test]
    fn cycle_modularity_closed_form() {
        // C_12 split into 3 arcs of 4: σ_c = 2*3 intra (each arc has 3 edges),
        // Σ_c = 8 per arc, 2m = 24 → Q = 3*(6/24 - (8/24)^2) = 0.75 - 1/3
        let g = cycle(12);
        let labels: Vec<VertexId> = (0..12).map(|v| (v / 4) as VertexId).collect();
        let q = modularity(&g, &labels);
        let expected = 0.75 - 1.0 / 3.0;
        assert!((q - expected).abs() < 1e-9, "Q = {q}");
    }

    #[test]
    fn range_bounds_hold() {
        let g = caveman(4, 5);
        for labels in [
            vec![0; 20],
            singleton_labels(20),
            caveman_ground_truth(4, 5),
        ] {
            let q = modularity(&g, &labels);
            assert!((-0.5..=1.0).contains(&q), "Q = {q}");
        }
    }

    #[test]
    fn good_partition_beats_bad() {
        let g = caveman(4, 6);
        let good = caveman_ground_truth(4, 6);
        let bad: Vec<VertexId> = (0..24).map(|v| (v % 4) as VertexId).collect();
        assert!(modularity(&g, &good) > modularity(&g, &bad));
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = nulpa_graph::gen::erdos_renyi(200, 600, 3);
        let labels: Vec<VertexId> = (0..200).map(|v| (v % 17) as VertexId).collect();
        let a = modularity(&g, &labels);
        let b = modularity_par(&g, &labels);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_zero() {
        let g = Csr::empty(5);
        assert_eq!(modularity(&g, &singleton_labels(5)), 0.0);
    }

    #[test]
    fn weights_respected() {
        // two vertices, heavy edge; both in same community → Q = 0 (one community)
        let g = GraphBuilder::new(3)
            .add_undirected_edge(0, 1, 10.0)
            .add_undirected_edge(1, 2, 0.1)
            .build();
        let grouped = vec![0, 0, 2];
        let q = modularity(&g, &grouped);
        // heavy pair together should be close to maximal for this graph
        let split = vec![0, 1, 2];
        assert!(q > modularity(&g, &split));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_wrong_label_len() {
        modularity(&complete(3), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_label() {
        modularity(&complete(3), &[0, 1, 7]);
    }

    #[test]
    fn delta_modularity_matches_recomputation() {
        // Move vertex 0 of a two-clique graph from its clique (d) into the
        // other (c) and compare ΔQ with direct recomputation of Q.
        let g = two_cliques_bridge(4);
        let before = caveman_ground_truth(2, 4);
        let mut after = before.clone();
        after[0] = 1;
        let dq_direct = modularity(&g, &after) - modularity(&g, &before);

        let two_m = g.total_weight();
        let k_i = g.weighted_degree(0);
        let mut k_to_c = 0.0;
        let mut k_to_d = 0.0;
        for (v, w) in g.neighbors(0) {
            if before[v as usize] == 1 {
                k_to_c += w as f64;
            } else if before[v as usize] == 0 {
                k_to_d += w as f64;
            }
        }
        let mut sigma = [0.0f64; 2];
        for u in g.vertices() {
            sigma[before[u as usize] as usize] += g.weighted_degree(u);
        }
        let dq = delta_modularity(k_i, k_to_c, k_to_d, sigma[1], sigma[0], two_m);
        assert!(
            (dq - dq_direct).abs() < 1e-9,
            "formula {dq} vs direct {dq_direct}"
        );
    }
}
