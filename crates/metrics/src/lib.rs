//! # nulpa-metrics
//!
//! Community-quality metrics for the ν-LPA reproduction: modularity `Q`
//! (paper Eq. 1), delta-modularity `ΔQ` (Eq. 2), Normalized Mutual
//! Information against planted ground truth, and partition bookkeeping
//! (community counts for Table 1's `|Γ|` column, label compaction,
//! validation).
//!
//! ```
//! use nulpa_graph::gen::{two_cliques_bridge, caveman_ground_truth};
//! use nulpa_metrics::modularity;
//!
//! let g = two_cliques_bridge(5);
//! let q = modularity(&g, &caveman_ground_truth(2, 5));
//! assert!(q > 0.4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod community;
pub mod cut;
pub mod modularity;
pub mod nmi;
pub mod validate;

pub use community::{
    community_count, community_sizes, compact_labels, max_community_size, same_partition,
};
pub use cut::{cut_fraction, edge_cut, imbalance};
pub use modularity::{delta_modularity, modularity, modularity_from_sums, modularity_par};
pub use nmi::nmi;
pub use validate::{check_labels, count_unsupported, PartitionError};
