//! Partition bookkeeping: community counts, sizes, compaction.

use nulpa_graph::VertexId;

/// Number of distinct communities in a label vector — `|Γ|` in Table 1.
pub fn community_count(labels: &[VertexId]) -> usize {
    if labels.is_empty() {
        return 0;
    }
    let mut seen = vec![false; labels.len()];
    let mut count = 0;
    for &l in labels {
        let l = l as usize;
        assert!(l < labels.len(), "label out of range");
        if !seen[l] {
            seen[l] = true;
            count += 1;
        }
    }
    count
}

/// Size of every community, indexed by (raw) label id.
pub fn community_sizes(labels: &[VertexId]) -> Vec<usize> {
    let mut sizes = vec![0usize; labels.len()];
    for &l in labels {
        sizes[l as usize] += 1;
    }
    sizes
}

/// Renumber labels to a dense `0..k` range, preserving first-appearance
/// order. Returns `(compacted labels, k)`.
pub fn compact_labels(labels: &[VertexId]) -> (Vec<VertexId>, usize) {
    let n = labels.len();
    const UNSET: VertexId = VertexId::MAX;
    let max_label = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut remap = vec![UNSET; max_label.max(n)];
    let mut out = Vec::with_capacity(n);
    let mut next: VertexId = 0;
    for &l in labels {
        let slot = &mut remap[l as usize];
        if *slot == UNSET {
            *slot = next;
            next += 1;
        }
        out.push(*slot);
    }
    (out, next as usize)
}

/// Largest community size (0 for an empty partition).
pub fn max_community_size(labels: &[VertexId]) -> usize {
    community_sizes(labels).into_iter().max().unwrap_or(0)
}

/// `true` when two label vectors describe the same partition (up to
/// renaming of community ids).
pub fn same_partition(a: &[VertexId], b: &[VertexId]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    compact_labels(a).0 == compact_labels(b).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_basic() {
        assert_eq!(community_count(&[0, 0, 2, 2, 1]), 3);
        assert_eq!(community_count(&[]), 0);
        assert_eq!(community_count(&[0]), 1);
    }

    #[test]
    fn sizes_basic() {
        let s = community_sizes(&[0, 0, 2, 2, 2]);
        assert_eq!(s[0], 2);
        assert_eq!(s[1], 0);
        assert_eq!(s[2], 3);
    }

    #[test]
    fn compact_preserves_partition() {
        let labels = vec![5, 5, 2, 7, 2];
        let (c, k) = compact_labels(&labels);
        assert_eq!(k, 3);
        assert_eq!(c, vec![0, 0, 1, 2, 1]);
    }

    #[test]
    fn compact_idempotent() {
        let labels = vec![0, 1, 1, 2];
        let (c, _) = compact_labels(&labels);
        assert_eq!(c, labels);
    }

    #[test]
    fn same_partition_up_to_renaming() {
        assert!(same_partition(&[0, 0, 1], &[2, 2, 0]));
        assert!(!same_partition(&[0, 0, 1], &[0, 1, 1]));
        assert!(!same_partition(&[0, 0], &[0, 0, 0]));
    }

    #[test]
    fn max_size() {
        assert_eq!(max_community_size(&[1, 1, 1, 0]), 3);
        assert_eq!(max_community_size(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn count_rejects_bad_label() {
        community_count(&[9, 0]);
    }
}
