//! Partition sanity checks used by tests and the harness.

use nulpa_graph::{Csr, VertexId};

/// Problems a partition can exhibit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// `labels.len() != |V|`.
    LengthMismatch {
        /// `|V|` of the graph.
        expected: usize,
        /// `labels.len()` received.
        got: usize,
    },
    /// Some label is `>= |V|` (labels must be vertex ids in LPA).
    LabelOutOfRange {
        /// Offending vertex.
        vertex: VertexId,
        /// Its out-of-range label.
        label: VertexId,
    },
    /// A community has no internal support: a vertex with neighbours has a
    /// label shared by none of them and is not its own label. LPA never
    /// produces this, so it flags implementation bugs.
    Unsupported {
        /// Offending vertex.
        vertex: VertexId,
        /// Its unsupported label.
        label: VertexId,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::LengthMismatch { expected, got } => {
                write!(f, "labels length {got}, expected {expected}")
            }
            PartitionError::LabelOutOfRange { vertex, label } => {
                write!(f, "vertex {vertex} has out-of-range label {label}")
            }
            PartitionError::Unsupported { vertex, label } => {
                write!(
                    f,
                    "vertex {vertex} holds label {label} shared by no neighbour"
                )
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// Structural validity: length and label range.
pub fn check_labels(g: &Csr, labels: &[VertexId]) -> Result<(), PartitionError> {
    if labels.len() != g.num_vertices() {
        return Err(PartitionError::LengthMismatch {
            expected: g.num_vertices(),
            got: labels.len(),
        });
    }
    let n = g.num_vertices() as VertexId;
    for (v, &l) in labels.iter().enumerate() {
        if l >= n {
            return Err(PartitionError::LabelOutOfRange {
                vertex: v as VertexId,
                label: l,
            });
        }
    }
    Ok(())
}

/// Stronger LPA-specific invariant: every vertex's label is either its own
/// id or shared with at least one neighbour. (After any LPA iteration a
/// vertex's label came from its neighbourhood — though a neighbour may have
/// since moved on, communities in converged LPA output satisfy this on all
/// but pathological graphs, so it is exposed as a *warning count*, not an
/// error.)
pub fn count_unsupported(g: &Csr, labels: &[VertexId]) -> usize {
    let mut count = 0;
    for u in g.vertices() {
        let l = labels[u as usize];
        if l == u || g.degree(u) == 0 {
            continue;
        }
        if !g.neighbor_ids(u).iter().any(|&v| labels[v as usize] == l) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_graph::gen::{caveman, caveman_ground_truth};

    #[test]
    fn valid_labels_pass() {
        let g = caveman(2, 4);
        // ground truth uses ids 0/1 which are < |V|
        assert!(check_labels(&g, &caveman_ground_truth(2, 4)).is_ok());
    }

    #[test]
    fn length_mismatch_detected() {
        let g = caveman(2, 4);
        assert!(matches!(
            check_labels(&g, &[0, 1]),
            Err(PartitionError::LengthMismatch {
                expected: 8,
                got: 2
            })
        ));
    }

    #[test]
    fn out_of_range_detected() {
        let g = caveman(2, 4);
        let mut labels = caveman_ground_truth(2, 4);
        labels[3] = 99;
        assert!(matches!(
            check_labels(&g, &labels),
            Err(PartitionError::LabelOutOfRange {
                vertex: 3,
                label: 99
            })
        ));
    }

    #[test]
    fn unsupported_counting() {
        let g = caveman(2, 4); // vertices 0..3 and 4..7
        let mut labels: Vec<VertexId> = vec![0, 0, 0, 0, 4, 4, 4, 4];
        assert_eq!(count_unsupported(&g, &labels), 0);
        // vertex 1 claims community 6, but none of its neighbours hold 6
        labels[1] = 6;
        assert_eq!(count_unsupported(&g, &labels), 1);
    }

    #[test]
    fn own_label_always_supported() {
        let g = caveman(2, 4);
        let labels: Vec<VertexId> = (0..8).collect();
        assert_eq!(count_unsupported(&g, &labels), 0);
    }

    #[test]
    fn error_messages_render() {
        let e = PartitionError::Unsupported {
            vertex: 1,
            label: 6,
        };
        assert!(e.to_string().contains("vertex 1"));
    }
}
