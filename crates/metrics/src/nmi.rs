//! Normalized Mutual Information between two partitions.
//!
//! The paper cites LPA's high NMI against ground truth (Peng et al. 2014)
//! as the justification for its moderate modularity; the social stand-ins
//! carry planted ground truth so the examples and tests can measure it.

use crate::community::compact_labels;
use nulpa_graph::VertexId;

/// NMI with arithmetic-mean normalization:
/// `NMI(X, Y) = 2 I(X; Y) / (H(X) + H(Y))`, in `[0, 1]`.
///
/// Degenerate cases: if both partitions have zero entropy (all vertices in
/// one community each), they are identical partitions and NMI is 1; if only
/// one does, NMI is 0.
///
/// # Panics
/// Panics if the vectors differ in length or are empty.
pub fn nmi(a: &[VertexId], b: &[VertexId]) -> f64 {
    assert_eq!(a.len(), b.len(), "partition length mismatch");
    assert!(!a.is_empty(), "empty partitions");
    let n = a.len() as f64;
    let (ca, ka) = compact_labels(a);
    let (cb, kb) = compact_labels(b);

    // Joint counts.
    let mut joint = vec![0u32; ka * kb];
    let mut count_a = vec![0u32; ka];
    let mut count_b = vec![0u32; kb];
    for (&x, &y) in ca.iter().zip(&cb) {
        joint[x as usize * kb + y as usize] += 1;
        count_a[x as usize] += 1;
        count_b[y as usize] += 1;
    }

    let h = |counts: &[u32]| -> f64 {
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let ha = h(&count_a);
    let hb = h(&count_b);

    let mut mi = 0.0;
    for x in 0..ka {
        for y in 0..kb {
            let cxy = joint[x * kb + y];
            if cxy == 0 {
                continue;
            }
            let pxy = cxy as f64 / n;
            let px = count_a[x] as f64 / n;
            let py = count_b[y] as f64 / n;
            mi += pxy * (pxy / (px * py)).ln();
        }
    }

    if ha + hb == 0.0 {
        return 1.0; // both trivial => identical partitions
    }
    if ha == 0.0 || hb == 0.0 {
        return 0.0;
    }
    (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_give_one() {
        let p = vec![0, 0, 1, 1, 2, 2];
        assert!((nmi(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn renamed_partitions_give_one() {
        let a = vec![0, 0, 1, 1];
        let b = vec![3, 3, 0, 0];
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_give_zero() {
        // a splits front/back, b splits even/odd, 8 vertices: independent
        let a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0, 1, 0, 1, 0, 1, 0, 1];
        assert!(nmi(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn trivial_vs_split_gives_zero() {
        let a = vec![0, 0, 0, 0];
        let b = vec![0, 1, 2, 3];
        assert_eq!(nmi(&a, &b), 0.0);
    }

    #[test]
    fn both_trivial_gives_one() {
        let a = vec![0, 0, 0];
        let b = vec![2, 2, 2];
        assert_eq!(nmi(&a, &b), 1.0);
    }

    #[test]
    fn symmetric() {
        let a = vec![0, 0, 1, 2, 2, 1];
        let b = vec![0, 1, 1, 2, 2, 2];
        assert!((nmi(&a, &b) - nmi(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn partial_agreement_in_between() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1];
        let v = nmi(&a, &b);
        assert!(v > 0.1 && v < 0.9, "nmi = {v}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_length_mismatch() {
        nmi(&[0, 1], &[0]);
    }
}
