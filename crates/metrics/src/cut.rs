//! Partitioning quality metrics: edge cut and balance.
//!
//! The paper's conclusion motivates ν-LPA for "partitioning of large
//! graphs" (PuLP/XtraPuLP-style); these metrics score the LPA-based
//! partitioner shipped in `nulpa-core::pulp`.

use nulpa_graph::{Csr, VertexId};

/// Total weight of edges crossing part boundaries, counted once per
/// undirected edge (directed-stored weight / 2).
pub fn edge_cut(g: &Csr, parts: &[VertexId]) -> f64 {
    assert_eq!(parts.len(), g.num_vertices(), "parts length mismatch");
    let mut cut = 0.0f64;
    for u in g.vertices() {
        for (v, w) in g.neighbors(u) {
            if parts[u as usize] != parts[v as usize] {
                cut += w as f64;
            }
        }
    }
    cut / 2.0
}

/// Fraction of undirected edge weight crossing part boundaries, in
/// `[0, 1]`. Zero for an edgeless graph.
pub fn cut_fraction(g: &Csr, parts: &[VertexId]) -> f64 {
    let total = g.total_weight() / 2.0;
    if total == 0.0 {
        0.0
    } else {
        edge_cut(g, parts) / total
    }
}

/// Load imbalance of a `k`-way partition: `max part size / (n / k)`.
/// A perfectly balanced partition scores 1.0.
///
/// # Panics
/// Panics if `k == 0` or the partition is empty.
pub fn imbalance(parts: &[VertexId], k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    assert!(!parts.is_empty(), "empty partition");
    let mut sizes = vec![0usize; k];
    for &p in parts {
        assert!((p as usize) < k, "part id {p} out of range for k = {k}");
        sizes[p as usize] += 1;
    }
    let max = *sizes.iter().max().unwrap() as f64;
    max / (parts.len() as f64 / k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_graph::gen::{caveman_weighted, complete, grid2d};

    #[test]
    fn cut_of_uniform_partition_is_zero() {
        let g = complete(6);
        assert_eq!(edge_cut(&g, &[0; 6]), 0.0);
        assert_eq!(cut_fraction(&g, &[0; 6]), 0.0);
    }

    #[test]
    fn cut_counts_each_edge_once() {
        let g = complete(4); // 6 undirected edges
                             // split 2/2: 4 edges cross
        let parts = vec![0, 0, 1, 1];
        assert_eq!(edge_cut(&g, &parts), 4.0);
        assert!((cut_fraction(&g, &parts) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn caveman_natural_cut() {
        let g = caveman_weighted(2, 5, 1.0); // single unit bridge
        let parts: Vec<u32> = (0..10).map(|v| v / 5).collect();
        assert_eq!(edge_cut(&g, &parts), 1.0);
    }

    #[test]
    fn imbalance_perfect_and_skewed() {
        assert_eq!(imbalance(&[0, 0, 1, 1], 2), 1.0);
        assert_eq!(imbalance(&[0, 0, 0, 1], 2), 1.5);
    }

    #[test]
    fn cut_fraction_in_unit_range_on_random_partition() {
        let g = grid2d(10, 10, 1.0, 0);
        let parts: Vec<u32> = (0..100).map(|v| v % 4).collect();
        let f = cut_fraction(&g, &parts);
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_wrong_length() {
        edge_cut(&complete(3), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn imbalance_rejects_bad_part() {
        imbalance(&[0, 5], 2);
    }

    #[test]
    fn empty_graph_zero_cut() {
        let g = nulpa_graph::Csr::empty(3);
        assert_eq!(cut_fraction(&g, &[0, 1, 2]), 0.0);
    }
}
