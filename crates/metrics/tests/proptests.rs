//! Property-based tests for the metrics crate.

use nulpa_graph::GraphBuilder;
use nulpa_metrics::{
    community_count, community_sizes, compact_labels, cut_fraction, edge_cut, imbalance,
    modularity, modularity_par, nmi, same_partition,
};
use proptest::prelude::*;

fn arb_graph_and_labels() -> impl Strategy<Value = (nulpa_graph::Csr, Vec<u32>)> {
    (3..50usize).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0.1f32..5.0), 0..150);
        let labels = proptest::collection::vec(0..n as u32, n);
        (edges, labels).prop_map(move |(edges, labels)| {
            let g = GraphBuilder::new(n)
                .add_undirected_edges(edges.into_iter().filter(|(u, v, _)| u != v))
                .build();
            (g, labels)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_modularity_matches_sequential((g, labels) in arb_graph_and_labels()) {
        let a = modularity(&g, &labels);
        let b = modularity_par(&g, &labels);
        prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
    }

    #[test]
    fn modularity_bounded((g, labels) in arb_graph_and_labels()) {
        let q = modularity(&g, &labels);
        prop_assert!((-0.5 - 1e-9..=1.0 + 1e-9).contains(&q), "Q = {}", q);
    }

    #[test]
    fn single_community_modularity_zero((g, _) in arb_graph_and_labels()) {
        let labels = vec![0u32; g.num_vertices()];
        prop_assert!(modularity(&g, &labels).abs() < 1e-9);
    }

    #[test]
    fn compact_preserves_partition_structure((_, labels) in arb_graph_and_labels()) {
        let (c, k) = compact_labels(&labels);
        prop_assert_eq!(community_count(&labels), k);
        prop_assert!(same_partition(&labels, &c));
        // compacted ids are dense 0..k
        let max = c.iter().copied().max().unwrap_or(0);
        prop_assert!(k == 0 || max as usize == k - 1);
    }

    #[test]
    fn sizes_sum_to_n((_, labels) in arb_graph_and_labels()) {
        let total: usize = community_sizes(&labels).iter().sum();
        prop_assert_eq!(total, labels.len());
    }

    #[test]
    fn nmi_symmetric_and_bounded((_, a) in arb_graph_and_labels(), seed in 0u64..100) {
        // derive a second partition by rotating labels
        let b: Vec<u32> = a.iter().map(|&l| (l + seed as u32) % a.len() as u32).collect();
        let x = nmi(&a, &b);
        let y = nmi(&b, &a);
        prop_assert!((x - y).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&x));
        prop_assert!((nmi(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cut_fraction_bounded_and_zero_for_trivial((g, labels) in arb_graph_and_labels()) {
        let f = cut_fraction(&g, &labels);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&f));
        prop_assert_eq!(cut_fraction(&g, &vec![0; g.num_vertices()]), 0.0);
        // edge_cut is consistent with the fraction
        let total = g.total_weight() / 2.0;
        if total > 0.0 {
            prop_assert!((edge_cut(&g, &labels) / total - f).abs() < 1e-9);
        }
    }

    #[test]
    fn imbalance_at_least_one((_, labels) in arb_graph_and_labels()) {
        let (c, k) = compact_labels(&labels);
        if k > 0 {
            prop_assert!(imbalance(&c, k) >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn same_partition_invariant_under_renaming((_, labels) in arb_graph_and_labels()) {
        // rename labels through an arbitrary injective map (here: *2+1 mod big)
        let renamed: Vec<u32> = labels.iter().map(|&l| l * 2 + 1).collect();
        prop_assert!(same_partition(&labels, &renamed));
    }
}
