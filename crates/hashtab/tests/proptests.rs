//! Property-based tests for the per-vertex hashtables: for any key/weight
//! stream that fits the layout's capacity guarantee, every probe strategy
//! and both access paths must agree with a reference map.

use nulpa_hashtab::{
    capacity_for_degree, secondary_prime, CoalescedTable, ProbeSeq, ProbeStrategy, TableMut,
    TableShared, EMPTY_KEY, NO_NEXT,
};
use nulpa_simt::AtomicF32;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::AtomicU32;

/// Key streams whose *distinct* key count never exceeds the degree, like
/// a neighbour scan (keys are neighbour labels, at most `degree` many).
fn arb_stream() -> impl Strategy<Value = Vec<(u32, f32)>> {
    proptest::collection::vec((0u32..5000, 0.25f32..4.0), 1..120)
}

fn reference(stream: &[(u32, f32)]) -> BTreeMap<u32, f32> {
    let mut m = BTreeMap::new();
    for &(k, w) in stream {
        *m.entry(k).or_insert(0.0) += w;
    }
    m
}

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-4 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unshared_matches_reference_all_strategies(stream in arb_stream()) {
        let cap = capacity_for_degree(stream.len());
        let p2 = secondary_prime(cap);
        let reference = reference(&stream);
        for strategy in ProbeStrategy::all() {
            let mut keys = vec![EMPTY_KEY; cap];
            let mut values = vec![0.0f32; cap];
            let mut t = TableMut::<f32>::new(&mut keys, &mut values, p2);
            for &(k, w) in &stream {
                prop_assert!(t.accumulate(strategy, k, w).is_done(), "{:?}", strategy);
            }
            let entries: BTreeMap<u32, f32> = t.entries().into_iter().collect();
            prop_assert_eq!(entries.len(), reference.len());
            for (k, &v) in &reference {
                prop_assert!(close(entries[k], v), "{:?} key {}", strategy, k);
            }
        }
    }

    #[test]
    fn shared_matches_unshared(stream in arb_stream()) {
        let cap = capacity_for_degree(stream.len());
        let p2 = secondary_prime(cap);
        let keys: Vec<AtomicU32> = (0..cap).map(|_| AtomicU32::new(EMPTY_KEY)).collect();
        let values: Vec<AtomicF32> = (0..cap).map(|_| AtomicF32::default()).collect();
        let shared = TableShared::<f32>::new(&keys, &values, p2);
        let mut ks = vec![EMPTY_KEY; cap];
        let mut vs = vec![0.0f32; cap];
        let mut unshared = TableMut::<f32>::new(&mut ks, &mut vs, p2);
        for &(k, w) in &stream {
            prop_assert!(shared
                .accumulate(ProbeStrategy::QuadraticDouble, k, w)
                .is_done());
            prop_assert!(unshared
                .accumulate(ProbeStrategy::QuadraticDouble, k, w)
                .is_done());
        }
        let (sk, sv) = shared.max_key().unwrap();
        let (uk, uv) = unshared.max_key().unwrap();
        // max weight must agree; slot layouts are identical so keys too
        prop_assert_eq!(sk, uk);
        prop_assert!(close(sv, uv));
    }

    #[test]
    fn coalesced_matches_reference(stream in arb_stream()) {
        let cap = capacity_for_degree(stream.len());
        let mut keys = vec![EMPTY_KEY; cap];
        let mut values = vec![0.0f32; cap];
        let mut nexts = vec![NO_NEXT; cap];
        let mut t = CoalescedTable::<f32>::new(&mut keys, &mut values, &mut nexts);
        let reference = reference(&stream);
        for &(k, w) in &stream {
            prop_assert!(t.accumulate(k, w, None).is_done());
        }
        let entries: BTreeMap<u32, f32> = t.entries().into_iter().collect();
        prop_assert_eq!(entries.len(), reference.len());
        for (k, &v) in &reference {
            prop_assert!(close(entries[k], v));
        }
    }

    #[test]
    fn max_key_is_true_argmax(stream in arb_stream()) {
        let cap = capacity_for_degree(stream.len());
        let p2 = secondary_prime(cap);
        let mut keys = vec![EMPTY_KEY; cap];
        let mut values = vec![0.0f32; cap];
        let mut t = TableMut::<f32>::new(&mut keys, &mut values, p2);
        for &(k, w) in &stream {
            t.accumulate(ProbeStrategy::QuadraticDouble, k, w);
        }
        let (_, best_v) = t.max_key().unwrap();
        let max_entry = t
            .entries()
            .into_iter()
            .map(|(_, v)| v)
            .fold(f32::MIN, f32::max);
        prop_assert_eq!(best_v, max_entry);
    }

    #[test]
    fn probe_sequences_stay_in_bounds(
        key in 0u32..u32::MAX - 1,
        exp in 1u32..16,
        steps in 1usize..200,
    ) {
        let p1 = (1usize << exp) - 1;
        let p2 = secondary_prime(p1);
        for strategy in ProbeStrategy::all() {
            let mut seq = ProbeSeq::new(strategy, key, p1, p2);
            for _ in 0..steps {
                prop_assert!(seq.slot() < p1);
                seq.advance();
            }
        }
    }

    #[test]
    fn layout_capacity_always_sufficient(degree in 1usize..10_000) {
        let cap = capacity_for_degree(degree);
        prop_assert!(cap >= degree);
        prop_assert!(cap < 2 * degree + 1);
        prop_assert_eq!((cap + 1) & cap, 0); // Mersenne
        prop_assert!(secondary_prime(cap) > cap);
    }
}
