//! # nulpa-hashtab
//!
//! The paper's novel per-vertex open-addressing hashtable (§4.2, Fig. 2,
//! Algorithm 2): all per-vertex tables live in two global buffers of size
//! `2|E|`, each vertex's table sits at offset `2·O_i` with capacity
//! `nextPow2(D_i) − 1`, and collisions resolve by hybrid
//! **quadratic-double** probing (with linear, quadratic, and pure double
//! hashing available for the Fig. 3 ablation, and a coalesced-chaining
//! table for the Fig. 7 appendix comparison).
//!
//! Tables come in an unshared flavour for thread-per-vertex kernels and a
//! shared (atomic CAS/add) flavour for block-per-vertex kernels, both
//! generic over `f32`/`f64` values (Fig. 5 ablation) and optionally
//! metered by the SIMT simulator's cost model.
//!
//! ```
//! use nulpa_hashtab::{TableMut, ProbeStrategy, layout};
//!
//! let degree = 5;
//! let cap = layout::capacity_for_degree(degree);
//! let mut keys = vec![layout::EMPTY_KEY; cap];
//! let mut values = vec![0.0f32; cap];
//! let mut t = TableMut::new(&mut keys, &mut values, layout::secondary_prime(cap));
//! t.accumulate(ProbeStrategy::QuadraticDouble, 42, 1.0);
//! t.accumulate(ProbeStrategy::QuadraticDouble, 42, 2.0);
//! assert_eq!(t.max_key(), Some((42, 3.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coalesced;
pub mod layout;
pub mod probe;
pub mod table;
pub mod value;

pub use coalesced::{CoalescedAccumulate, CoalescedAddr, CoalescedTable, NO_NEXT};
pub use layout::{
    capacity_for_degree, next_pow2, secondary_prime, TableSlot, EMPTY_KEY, MAX_RETRIES,
};
pub use probe::{ProbeSeq, ProbeStrategy};
pub use table::{probe_budget, Accumulate, TableAddr, TableMut, TableShared};
pub use value::HashValue;
