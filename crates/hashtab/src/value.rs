//! Value-type abstraction for hashtable payloads (Fig. 5 ablation).
//!
//! The paper compares 32-bit and 64-bit floating-point hashtable values
//! and adopts `f32` (same community quality, less memory traffic). This
//! trait lets every table, kernel, and bench be generic over that choice,
//! with the simulator charging 64-bit operations double via
//! [`Width`].

use nulpa_simt::{AtomicF32, AtomicF64, Width};

/// A floating-point type usable as a hashtable value.
pub trait HashValue: Copy + PartialOrd + Send + Sync + std::fmt::Debug + 'static {
    /// Matching atomic cell type.
    type Atomic: Default + Send + Sync;

    /// Operand width for the simulator's cost model.
    const WIDTH: Width;

    /// Short name for figure labels ("Float" / "Double", as in Fig. 5).
    const LABEL: &'static str;

    /// Zero.
    fn zero() -> Self;
    /// Conversion from the graph's `f32` edge weights.
    fn from_weight(w: f32) -> Self;
    /// Widening conversion for reporting.
    fn to_f64(self) -> f64;
    /// Plain addition.
    fn add(self, other: Self) -> Self;

    /// Atomic load.
    fn atomic_load(a: &Self::Atomic) -> Self;
    /// Atomic store.
    fn atomic_store(a: &Self::Atomic, v: Self);
    /// Atomic add.
    fn atomic_add(a: &Self::Atomic, v: Self);
}

impl HashValue for f32 {
    type Atomic = AtomicF32;
    const WIDTH: Width = Width::W32;
    const LABEL: &'static str = "Float";

    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn from_weight(w: f32) -> Self {
        w
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn add(self, other: Self) -> Self {
        self + other
    }
    #[inline]
    fn atomic_load(a: &Self::Atomic) -> Self {
        a.load()
    }
    #[inline]
    fn atomic_store(a: &Self::Atomic, v: Self) {
        a.store(v)
    }
    #[inline]
    fn atomic_add(a: &Self::Atomic, v: Self) {
        a.fetch_add(v);
    }
}

impl HashValue for f64 {
    type Atomic = AtomicF64;
    const WIDTH: Width = Width::W64;
    const LABEL: &'static str = "Double";

    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn from_weight(w: f32) -> Self {
        w as f64
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn add(self, other: Self) -> Self {
        self + other
    }
    #[inline]
    fn atomic_load(a: &Self::Atomic) -> Self {
        a.load()
    }
    #[inline]
    fn atomic_store(a: &Self::Atomic, v: Self) {
        a.store(v)
    }
    #[inline]
    fn atomic_add(a: &Self::Atomic, v: Self) {
        a.fetch_add(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<V: HashValue>() {
        let a = V::from_weight(1.5);
        let b = V::from_weight(2.5);
        assert_eq!(a.add(b).to_f64(), 4.0);
        assert_eq!(V::zero().to_f64(), 0.0);
        let cell = V::Atomic::default();
        V::atomic_store(&cell, a);
        V::atomic_add(&cell, b);
        assert_eq!(V::atomic_load(&cell).to_f64(), 4.0);
    }

    #[test]
    fn f32_contract() {
        roundtrip::<f32>();
        assert_eq!(f32::LABEL, "Float");
        assert_eq!(f32::WIDTH, Width::W32);
    }

    #[test]
    fn f64_contract() {
        roundtrip::<f64>();
        assert_eq!(f64::LABEL, "Double");
        assert_eq!(f64::WIDTH, Width::W64);
    }
}
