//! Per-vertex hashtable layout (paper Fig. 2).
//!
//! All per-vertex tables live in two global buffers (`buf_k`, `buf_v`) of
//! size `2|E|`. Vertex `i` with CSR offset `O_i` and degree `D_i` owns the
//! region `[2·O_i, 2·O_i + 2·D_i)`; within it, the table's *capacity* is
//! `nextPow2(D_i) − 1` slots, where `nextPow2(x)` is the smallest power of
//! two strictly greater than `x`. Because `nextPow2(D) ≤ 2D` for `D ≥ 1`,
//! the capacity always fits the reservation — asserted in
//! [`TableSlot::for_vertex`]. The Mersenne capacity `p₁ = 2^k − 1` makes
//! `mod p₁` cheap and serves as the first hash; the secondary "prime"
//! `p₂ = nextPow2(p₁) − 1 > p₁` feeds double hashing.

/// Sentinel marking an empty key slot. Valid because vertex labels are
/// `< |V| ≤ u32::MAX − 1`.
pub const EMPTY_KEY: u32 = u32::MAX;

/// Maximum probe attempts before the strategy falls back to a linear scan
/// (robustness addition over the paper; see [`crate::table`]).
pub const MAX_RETRIES: u32 = 64;

/// Smallest power of two **strictly greater** than `x`.
///
/// `next_pow2(1) = 2`, `next_pow2(4) = 8`, `next_pow2(7) = 8`.
#[inline]
pub fn next_pow2(x: usize) -> usize {
    let mut p = 1usize;
    while p <= x {
        p <<= 1;
    }
    p
}

/// Hashtable capacity for a vertex of degree `d`: `nextPow2(d) − 1`
/// (`p₁` in the paper). Zero for isolated vertices.
#[inline]
pub fn capacity_for_degree(d: usize) -> usize {
    if d == 0 {
        0
    } else {
        next_pow2(d) - 1
    }
}

/// Secondary modulus `p₂`: the next Mersenne number above `p₁`.
///
/// The paper writes `p₂ = nextPow2(p₁) − 1` "such that `p₂ > p₁`"; taken
/// literally with a strictly-greater `nextPow2`, that yields `p₂ = p₁` for
/// the Mersenne capacities the layout produces (`nextPow2(2^k−1) = 2^k`).
/// The only reading consistent with the stated constraint is the next
/// Mersenne number up, `2^(k+1) − 1`, which is what we compute
/// (`nextPow2(p₁ + 1) − 1`).
#[inline]
pub fn secondary_prime(p1: usize) -> usize {
    next_pow2(p1 + 1) - 1
}

/// Resolved placement of one vertex's hashtable inside the global buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableSlot {
    /// Start index within `buf_k`/`buf_v` (`2·O_i`).
    pub start: usize,
    /// Reserved length (`2·D_i`).
    pub reserve: usize,
    /// Usable slot count (`p₁ = nextPow2(D_i) − 1`).
    pub capacity: usize,
    /// Secondary modulus (`p₂`).
    pub p2: usize,
}

impl TableSlot {
    /// Layout for a vertex with CSR offset `offset` and degree `degree`.
    #[inline]
    pub fn for_vertex(offset: usize, degree: usize) -> TableSlot {
        let capacity = capacity_for_degree(degree);
        let reserve = 2 * degree;
        debug_assert!(
            capacity <= reserve,
            "capacity {capacity} exceeds reservation {reserve}"
        );
        debug_assert!(
            capacity >= degree,
            "capacity {capacity} cannot hold {degree} distinct labels"
        );
        TableSlot {
            start: 2 * offset,
            reserve,
            capacity,
            p2: if capacity == 0 {
                0
            } else {
                secondary_prime(capacity)
            },
        }
    }

    /// Total buffer length needed for a graph with `num_edges` stored
    /// directed edges: `2|E|` words per buffer.
    #[inline]
    pub fn buffer_len(num_edges: usize) -> usize {
        2 * num_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pow2_is_strictly_greater() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 2);
        assert_eq!(next_pow2(2), 4);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(4), 8);
        assert_eq!(next_pow2(1023), 1024);
        assert_eq!(next_pow2(1024), 2048);
    }

    #[test]
    fn capacity_holds_degree_and_fits_reserve() {
        for d in 1..2000usize {
            let c = capacity_for_degree(d);
            assert!(c >= d, "capacity {c} < degree {d}");
            assert!(c <= 2 * d, "capacity {c} > reserve {}", 2 * d);
        }
    }

    #[test]
    fn capacities_are_mersenne() {
        for d in 1..500usize {
            let c = capacity_for_degree(d);
            assert_eq!((c + 1) & c, 0, "capacity {c} not 2^k - 1");
        }
    }

    #[test]
    fn secondary_exceeds_primary() {
        for d in 1..500usize {
            let p1 = capacity_for_degree(d);
            let p2 = secondary_prime(p1);
            assert!(p2 > p1);
            assert_eq!((p2 + 1) & p2, 0);
        }
    }

    #[test]
    fn slot_layout_matches_paper() {
        let s = TableSlot::for_vertex(10, 5);
        assert_eq!(s.start, 20);
        assert_eq!(s.reserve, 10);
        assert_eq!(s.capacity, 7); // nextPow2(5) - 1
        assert_eq!(s.p2, 15);
    }

    #[test]
    fn isolated_vertex_has_empty_table() {
        let s = TableSlot::for_vertex(3, 0);
        assert_eq!(s.capacity, 0);
        assert_eq!(s.reserve, 0);
    }

    #[test]
    fn tables_never_overlap() {
        // simulate consecutive vertices in CSR order
        let degrees = [3usize, 1, 8, 0, 5];
        let mut offset = 0usize;
        let mut prev_end = 0usize;
        for &d in &degrees {
            let s = TableSlot::for_vertex(offset, d);
            assert!(s.start >= prev_end);
            prev_end = s.start + s.reserve;
            offset += d;
        }
        assert_eq!(prev_end, TableSlot::buffer_len(degrees.iter().sum()));
    }

    #[test]
    fn buffer_len_is_twice_edges() {
        assert_eq!(TableSlot::buffer_len(100), 200);
    }
}
