//! Collision-resolution probe sequences (paper §4.2, Algorithm 2).
//!
//! Four strategies are compared in the paper's Fig. 3:
//!
//! * **Linear** — step 1 each collision. Best cache behaviour, worst
//!   clustering.
//! * **Quadratic** — step starts at 1 and doubles per collision (the
//!   paper's formulation: "initial probe step of 1 and double it with each
//!   subsequent collision").
//! * **Double** — fixed per-key step derived from the secondary modulus
//!   `p₂`. No clustering, poor locality.
//! * **QuadraticDouble** — the paper's hybrid: `i ← i + δi;
//!   δi ← 2·δi + (k mod p₂)` (Algorithm 2 lines `update-begin..end`).
//!
//! All slots are computed as `i mod p₁` with `p₁` the table capacity.

/// Collision-resolution strategy for the per-vertex hashtables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProbeStrategy {
    /// Fixed step of 1.
    Linear,
    /// Step doubles after every collision.
    Quadratic,
    /// Fixed per-key step `1 + (k mod p₂)`.
    Double,
    /// Hybrid: quadratic growth plus the double-hashing per-key offset.
    QuadraticDouble,
}

impl ProbeStrategy {
    /// All strategies, in the paper's Fig. 3 order.
    pub fn all() -> [ProbeStrategy; 4] {
        [
            ProbeStrategy::Linear,
            ProbeStrategy::Quadratic,
            ProbeStrategy::Double,
            ProbeStrategy::QuadraticDouble,
        ]
    }

    /// Display name matching the paper's figure labels.
    pub fn label(self) -> &'static str {
        match self {
            ProbeStrategy::Linear => "Linear",
            ProbeStrategy::Quadratic => "Quadratic",
            ProbeStrategy::Double => "Double",
            ProbeStrategy::QuadraticDouble => "Quadratic-double",
        }
    }
}

/// Iterator over the probe sequence of one key.
#[derive(Clone, Debug)]
pub struct ProbeSeq {
    i: u64,
    di: u64,
    k: u64,
    p1: u64,
    p2: u64,
    strategy: ProbeStrategy,
}

impl ProbeSeq {
    /// Probe sequence for `key` in a table of capacity `p1` with secondary
    /// modulus `p2` (`p2 > p1`; both from [`crate::layout`]).
    ///
    /// # Panics
    /// Panics if `p1 == 0`.
    #[inline]
    pub fn new(strategy: ProbeStrategy, key: u32, p1: usize, p2: usize) -> Self {
        assert!(p1 > 0, "probe sequence over empty table");
        debug_assert!(p2 > p1);
        ProbeSeq {
            i: key as u64,
            di: 1,
            k: key as u64,
            p1: p1 as u64,
            p2: p2 as u64,
            strategy,
        }
    }

    /// Current slot index: `i mod p₁` (Algorithm 2, 1st hash function).
    #[inline]
    pub fn slot(&self) -> usize {
        (self.i % self.p1) as usize
    }

    /// Advance to the next probe position.
    #[inline]
    pub fn advance(&mut self) {
        match self.strategy {
            ProbeStrategy::Linear => {
                self.i = self.i.wrapping_add(1);
            }
            ProbeStrategy::Quadratic => {
                self.i = self.i.wrapping_add(self.di);
                self.di = self.di.wrapping_mul(2);
            }
            ProbeStrategy::Double => {
                // fixed per-key stride; +1 keeps it non-zero
                self.i = self.i.wrapping_add(1 + self.k % self.p2);
            }
            ProbeStrategy::QuadraticDouble => {
                // Algorithm 2: i += δi; δi = 2·δi + (k mod p₂)
                self.i = self.i.wrapping_add(self.di);
                self.di = self.di.wrapping_mul(2).wrapping_add(self.k % self.p2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn slots(strategy: ProbeStrategy, key: u32, p1: usize, p2: usize, n: usize) -> Vec<usize> {
        let mut seq = ProbeSeq::new(strategy, key, p1, p2);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(seq.slot());
            seq.advance();
        }
        out
    }

    #[test]
    fn first_slot_is_key_mod_p1() {
        for s in ProbeStrategy::all() {
            assert_eq!(slots(s, 23, 7, 15, 1), vec![23 % 7]);
        }
    }

    #[test]
    fn linear_walks_consecutively() {
        assert_eq!(slots(ProbeStrategy::Linear, 5, 7, 15, 4), vec![5, 6, 0, 1]);
    }

    #[test]
    fn quadratic_steps_double() {
        // i: 0, 1, 3, 7, 15 → mod 31
        assert_eq!(
            slots(ProbeStrategy::Quadratic, 0, 31, 63, 5),
            vec![0, 1, 3, 7, 15]
        );
    }

    #[test]
    fn double_uses_fixed_stride() {
        let s = slots(ProbeStrategy::Double, 9, 7, 15, 4);
        // stride = 1 + 9 % 15 = 10; i: 9, 19, 29, 39 mod 7
        assert_eq!(s, vec![2, 5, 1, 4]);
    }

    #[test]
    fn quadratic_double_matches_algorithm2() {
        // hand-computed: k = 9, p1 = 7, p2 = 15, offset = 9 % 15 = 9
        // i: 9 (di=1) → 10 (di=2+9=11) → 21 (di=22+9=31) → 52
        let s = slots(ProbeStrategy::QuadraticDouble, 9, 7, 15, 4);
        assert_eq!(s, vec![9 % 7, 10 % 7, 21 % 7, 52 % 7]);
    }

    #[test]
    fn linear_covers_entire_table() {
        let s = slots(ProbeStrategy::Linear, 100, 15, 31, 15);
        let distinct: HashSet<_> = s.into_iter().collect();
        assert_eq!(distinct.len(), 15);
    }

    #[test]
    fn different_keys_get_different_double_strides() {
        // double hashing's point: keys colliding on slot 0 diverge after
        let a = slots(ProbeStrategy::Double, 7, 7, 15, 3);
        let b = slots(ProbeStrategy::Double, 28, 7, 15, 3);
        assert_eq!(a[0], b[0]); // both hash to 0
        assert_ne!(a[1], b[1]); // strides differ (8 vs 14)
    }

    #[test]
    fn hybrid_diverges_for_colliding_keys() {
        // the hybrid's first step is always +1, so colliding keys share
        // slot[1]; the per-key offset kicks in from slot[2]
        let a = slots(ProbeStrategy::QuadraticDouble, 7, 7, 15, 4);
        let b = slots(ProbeStrategy::QuadraticDouble, 28, 7, 15, 4);
        assert_eq!(a[0], b[0]);
        assert_ne!(a[2..], b[2..]);
    }

    #[test]
    fn no_overflow_after_many_probes() {
        let mut seq = ProbeSeq::new(ProbeStrategy::QuadraticDouble, u32::MAX - 1, 1023, 2047);
        for _ in 0..500 {
            let s = seq.slot();
            assert!(s < 1023);
            seq.advance();
        }
    }

    #[test]
    #[should_panic(expected = "empty table")]
    fn rejects_zero_capacity() {
        ProbeSeq::new(ProbeStrategy::Linear, 0, 0, 1);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ProbeStrategy::QuadraticDouble.label(), "Quadratic-double");
        assert_eq!(ProbeStrategy::all().len(), 4);
    }
}
