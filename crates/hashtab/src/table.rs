//! Per-vertex open-addressing hashtable views (paper Algorithm 2).
//!
//! A table is a pair of borrowed slices — keys `H_k` and values `H_v` —
//! carved out of the global `2|E|` buffers by [`crate::layout::TableSlot`].
//! Two access modes mirror the paper's two kernels:
//!
//! * [`TableMut`] — **unshared**: one thread owns the table
//!   (thread-per-vertex kernel), so plain loads/stores suffice and no
//!   atomics are needed (paper §4.3: "only a single thread operates on the
//!   hashtable. This eliminates the need for atomic operations").
//! * [`TableShared`] — **shared**: a whole block cooperates on one table
//!   (block-per-vertex kernel); key claims use `atomicCAS` and weight
//!   accumulation uses `atomicAdd`, exactly as Algorithm 2's shared path.
//!
//! Both implement `accumulate` with any [`ProbeStrategy`], `max_key` with
//! deterministic first-max (lowest slot) tie-breaking — the paper's
//! "strict" LPA picks *the first label with the highest weight* — and
//! `clear`.
//!
//! **Termination.** Algorithm 2 returns `failed` after `MAX_RETRIES`
//! probes and the paper argues failure is "avoided by ensuring the
//! hashtable has sufficient capacity". Capacity is indeed sufficient
//! (`p₁ ≥ D_i ≥` #distinct keys), but non-linear probe sequences are not
//! guaranteed to *visit* every slot. We therefore fall back to a linear
//! scan from the last probed slot after `MAX_RETRIES` collisions, turning
//! the paper's empirical claim into a guarantee. The fallback is counted
//! separately so experiments can confirm it stays rare.
//!
//! Note: the paper's unshared pseudocode writes `H_v[s] ← v`; weights must
//! of course *accumulate* (Eq. 3's `Σ w`), and the reference CUDA
//! implementation does — we follow the implementation.

use crate::layout::{EMPTY_KEY, MAX_RETRIES};
use crate::probe::{ProbeSeq, ProbeStrategy};
use crate::value::HashValue;
#[cfg(feature = "sancheck")]
use nulpa_sancheck::hooks;
use nulpa_simt::{CostModel, LaneMeter, Width};
use std::sync::atomic::{AtomicU32, Ordering};

/// Result of an accumulate call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Accumulate {
    /// Inserted or updated at `slot`, after `probes` probe steps and
    /// `fallback_scans` linear-fallback steps (0 in the common case).
    Done {
        /// Slot finally used.
        slot: usize,
        /// Probe steps taken by the configured strategy.
        probes: u32,
        /// Additional linear-fallback steps (rare).
        fallback_scans: u32,
    },
    /// Table full and key absent — cannot happen when capacity ≥ number of
    /// distinct keys, which the layout guarantees for LPA's use.
    Failed,
}

impl Accumulate {
    /// `true` for [`Accumulate::Done`].
    pub fn is_done(self) -> bool {
        matches!(self, Accumulate::Done { .. })
    }
}

/// Addresses used by the simulator's locality model: word indices of the
/// table's key and value regions inside their global buffers.
#[derive(Clone, Copy, Debug)]
pub struct TableAddr {
    /// Word address of `H_k[0]`.
    pub keys: usize,
    /// Word address of `H_v[0]` (in a distinct buffer; give it a distinct
    /// address range so locality is modelled per buffer).
    pub values: usize,
    /// Table lives in shared memory: accesses are charged at shared-memory
    /// cost instead of global (the paper's §4.2 shared-memory-table
    /// experiment; its occupancy penalty is modelled by the caller).
    pub shared_space: bool,
}

impl TableAddr {
    /// Address pair for a table at byte-offset `start` when the value
    /// buffer is placed after a key buffer of `buf_len` words.
    pub fn from_start(start: usize, buf_len: usize) -> Self {
        TableAddr {
            keys: start,
            values: buf_len + start,
            shared_space: false,
        }
    }

    /// Mark the table as shared-memory resident.
    pub fn in_shared_memory(mut self) -> Self {
        self.shared_space = true;
        self
    }
}

/// Charge one table access (read or write have equal cost in both
/// memory-space models; reads/writes are still counted separately by the
/// caller via the meter's counters).
#[inline]
fn charge_table_access(
    meter: &mut LaneMeter,
    cost: &CostModel,
    addr: &TableAddr,
    word: usize,
    width: Width,
    write: bool,
) {
    if addr.shared_space {
        meter.shared(cost, width);
    } else if write {
        meter.global_write(cost, word, width);
    } else {
        meter.global_read(cost, word, width);
    }
}

/// Exclusive (single-thread) table view.
pub struct TableMut<'a, V: HashValue> {
    keys: &'a mut [u32],
    values: &'a mut [V],
    p2: usize,
}

impl<'a, V: HashValue> TableMut<'a, V> {
    /// Wrap key/value slices of equal length `p₁` with secondary modulus
    /// `p₂`.
    pub fn new(keys: &'a mut [u32], values: &'a mut [V], p2: usize) -> Self {
        assert_eq!(keys.len(), values.len(), "key/value slice length mismatch");
        TableMut { keys, values, p2 }
    }

    /// Usable capacity `p₁`.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Shadow-memory identity of this table: the address of its key
    /// region (tables are carved from disjoint buffer ranges).
    #[cfg(feature = "sancheck")]
    #[inline]
    fn tid(&self) -> usize {
        self.keys.as_ptr() as usize
    }

    /// Reset every slot to empty (paper's `hashtableClear`).
    pub fn clear(&mut self) {
        #[cfg(feature = "sancheck")]
        hooks::table_clear(self.tid());
        self.keys.fill(EMPTY_KEY);
        self.values.fill(V::zero());
    }

    /// Accumulate `weight` onto `key` (Algorithm 2, unshared path).
    pub fn accumulate(&mut self, strategy: ProbeStrategy, key: u32, weight: V) -> Accumulate {
        debug_assert_ne!(key, EMPTY_KEY);
        let p1 = self.keys.len();
        if p1 == 0 {
            return Accumulate::Failed;
        }
        let mut seq = ProbeSeq::new(strategy, key, p1, self.p2);
        let retries = probe_budget(p1);
        #[cfg(feature = "sancheck")]
        hooks::probe_start(self.tid(), p1, (retries + p1 as u32) as u64);
        let mut probes = 0u32;
        let mut last = 0usize;
        while probes < retries {
            let s = seq.slot();
            last = s;
            probes += 1;
            #[cfg(feature = "sancheck")]
            hooks::probe_slot(self.tid(), s);
            let k = self.keys[s];
            if k == key {
                self.values[s] = self.values[s].add(weight);
                #[cfg(feature = "sancheck")]
                {
                    hooks::claim(self.tid(), key, s);
                    hooks::probe_end(self.tid());
                }
                return Accumulate::Done {
                    slot: s,
                    probes,
                    fallback_scans: 0,
                };
            }
            if k == EMPTY_KEY {
                self.keys[s] = key;
                self.values[s] = weight;
                #[cfg(feature = "sancheck")]
                {
                    hooks::claim(self.tid(), key, s);
                    hooks::probe_end(self.tid());
                }
                return Accumulate::Done {
                    slot: s,
                    probes,
                    fallback_scans: 0,
                };
            }
            seq.advance();
        }
        // Linear fallback: guaranteed to find the key or a hole because
        // capacity ≥ #distinct keys.
        for off in 1..=p1 {
            let s = (last + off) % p1;
            #[cfg(feature = "sancheck")]
            hooks::probe_slot(self.tid(), s);
            let k = self.keys[s];
            if k == key {
                self.values[s] = self.values[s].add(weight);
                #[cfg(feature = "sancheck")]
                {
                    hooks::claim(self.tid(), key, s);
                    hooks::probe_end(self.tid());
                }
                return Accumulate::Done {
                    slot: s,
                    probes,
                    fallback_scans: off as u32,
                };
            }
            if k == EMPTY_KEY {
                self.keys[s] = key;
                self.values[s] = weight;
                #[cfg(feature = "sancheck")]
                {
                    hooks::claim(self.tid(), key, s);
                    hooks::probe_end(self.tid());
                }
                return Accumulate::Done {
                    slot: s,
                    probes,
                    fallback_scans: off as u32,
                };
            }
        }
        #[cfg(feature = "sancheck")]
        hooks::probe_end(self.tid());
        Accumulate::Failed
    }

    /// Metered variant of [`Self::accumulate`]: charges the lane for every
    /// key read, insert, and value update at realistic buffer addresses.
    pub fn accumulate_metered(
        &mut self,
        strategy: ProbeStrategy,
        key: u32,
        weight: V,
        addr: TableAddr,
        meter: &mut LaneMeter,
        cost: &CostModel,
    ) -> Accumulate {
        // Probe-scope bracket: memory traffic inside the probe loop is
        // attributed to the probe components in profiling builds.
        meter.probe_scope(true);
        let r = self.accumulate_metered_inner(strategy, key, weight, addr, meter, cost);
        meter.probe_scope(false);
        r
    }

    fn accumulate_metered_inner(
        &mut self,
        strategy: ProbeStrategy,
        key: u32,
        weight: V,
        addr: TableAddr,
        meter: &mut LaneMeter,
        cost: &CostModel,
    ) -> Accumulate {
        debug_assert_ne!(key, EMPTY_KEY);
        let p1 = self.keys.len();
        if p1 == 0 {
            return Accumulate::Failed;
        }
        let mut seq = ProbeSeq::new(strategy, key, p1, self.p2);
        let retries = probe_budget(p1);
        #[cfg(feature = "sancheck")]
        hooks::probe_start(self.tid(), p1, (retries + p1 as u32) as u64);
        let mut probes = 0u32;
        let mut last = 0usize;
        while probes < retries {
            let s = seq.slot();
            last = s;
            probes += 1;
            #[cfg(feature = "sancheck")]
            hooks::probe_slot(self.tid(), s);
            meter.probe();
            meter.alu(cost, 2); // slot computation + compare
            charge_table_access(meter, cost, &addr, addr.keys + s, Width::W32, false);
            let k = self.keys[s];
            if k == key || k == EMPTY_KEY {
                if k == EMPTY_KEY {
                    self.keys[s] = key;
                    self.values[s] = weight;
                    charge_table_access(meter, cost, &addr, addr.keys + s, Width::W32, true);
                } else {
                    self.values[s] = self.values[s].add(weight);
                    charge_table_access(meter, cost, &addr, addr.values + s, V::WIDTH, false);
                }
                charge_table_access(meter, cost, &addr, addr.values + s, V::WIDTH, true);
                meter.probe_done(probes as u64);
                #[cfg(feature = "sancheck")]
                {
                    hooks::claim(self.tid(), key, s);
                    hooks::probe_end(self.tid());
                }
                return Accumulate::Done {
                    slot: s,
                    probes,
                    fallback_scans: 0,
                };
            }
            seq.advance();
        }
        for off in 1..=p1 {
            let s = (last + off) % p1;
            #[cfg(feature = "sancheck")]
            hooks::probe_slot(self.tid(), s);
            meter.probe();
            charge_table_access(meter, cost, &addr, addr.keys + s, Width::W32, false);
            let k = self.keys[s];
            if k == key || k == EMPTY_KEY {
                if k == EMPTY_KEY {
                    self.keys[s] = key;
                    self.values[s] = weight;
                    charge_table_access(meter, cost, &addr, addr.keys + s, Width::W32, true);
                } else {
                    self.values[s] = self.values[s].add(weight);
                    charge_table_access(meter, cost, &addr, addr.values + s, V::WIDTH, false);
                }
                charge_table_access(meter, cost, &addr, addr.values + s, V::WIDTH, true);
                meter.probe_done(probes as u64 + off as u64);
                #[cfg(feature = "sancheck")]
                {
                    hooks::claim(self.tid(), key, s);
                    hooks::probe_end(self.tid());
                }
                return Accumulate::Done {
                    slot: s,
                    probes,
                    fallback_scans: off as u32,
                };
            }
        }
        #[cfg(feature = "sancheck")]
        hooks::probe_end(self.tid());
        Accumulate::Failed
    }

    /// Like [`Self::accumulate_metered`] but charges the *shared-path*
    /// costs of Algorithm 2 (an `atomicCAS` per claim and an `atomicAdd`
    /// per accumulation). Used by the simulated block-per-vertex kernel:
    /// the simulator executes lanes serially, so plain storage gives the
    /// same result as atomics while the meter records what hardware would
    /// pay.
    pub fn accumulate_metered_shared(
        &mut self,
        strategy: ProbeStrategy,
        key: u32,
        weight: V,
        addr: TableAddr,
        meter: &mut LaneMeter,
        cost: &CostModel,
    ) -> Accumulate {
        meter.probe_scope(true);
        let r = self.accumulate_metered_shared_inner(strategy, key, weight, addr, meter, cost);
        meter.probe_scope(false);
        r
    }

    fn accumulate_metered_shared_inner(
        &mut self,
        strategy: ProbeStrategy,
        key: u32,
        weight: V,
        addr: TableAddr,
        meter: &mut LaneMeter,
        cost: &CostModel,
    ) -> Accumulate {
        debug_assert_ne!(key, EMPTY_KEY);
        let p1 = self.keys.len();
        if p1 == 0 {
            return Accumulate::Failed;
        }
        let mut seq = ProbeSeq::new(strategy, key, p1, self.p2);
        let retries = probe_budget(p1);
        #[cfg(feature = "sancheck")]
        hooks::probe_start(self.tid(), p1, (retries + p1 as u32) as u64);
        let mut probes = 0u32;
        let mut last = 0usize;
        while probes < retries {
            let s = seq.slot();
            last = s;
            probes += 1;
            #[cfg(feature = "sancheck")]
            hooks::probe_slot(self.tid(), s);
            meter.probe();
            meter.alu(cost, 2);
            meter.global_read(cost, addr.keys + s, Width::W32);
            let k = self.keys[s];
            if k == key || k == EMPTY_KEY {
                if k == EMPTY_KEY {
                    self.keys[s] = key;
                    self.values[s] = weight;
                } else {
                    self.values[s] = self.values[s].add(weight);
                }
                meter.atomic(cost, addr.keys + s, Width::W32); // atomicCAS
                meter.atomic(cost, addr.values + s, V::WIDTH); // atomicAdd
                meter.probe_done(probes as u64);
                #[cfg(feature = "sancheck")]
                {
                    hooks::claim(self.tid(), key, s);
                    hooks::probe_end(self.tid());
                }
                return Accumulate::Done {
                    slot: s,
                    probes,
                    fallback_scans: 0,
                };
            }
            seq.advance();
        }
        for off in 1..=p1 {
            let s = (last + off) % p1;
            #[cfg(feature = "sancheck")]
            hooks::probe_slot(self.tid(), s);
            meter.probe();
            meter.global_read(cost, addr.keys + s, Width::W32);
            let k = self.keys[s];
            if k == key || k == EMPTY_KEY {
                if k == EMPTY_KEY {
                    self.keys[s] = key;
                    self.values[s] = weight;
                } else {
                    self.values[s] = self.values[s].add(weight);
                }
                meter.atomic(cost, addr.keys + s, Width::W32);
                meter.atomic(cost, addr.values + s, V::WIDTH);
                meter.probe_done(probes as u64 + off as u64);
                #[cfg(feature = "sancheck")]
                {
                    hooks::claim(self.tid(), key, s);
                    hooks::probe_end(self.tid());
                }
                return Accumulate::Done {
                    slot: s,
                    probes,
                    fallback_scans: off as u32,
                };
            }
        }
        #[cfg(feature = "sancheck")]
        hooks::probe_end(self.tid());
        Accumulate::Failed
    }

    /// Most-weighted key (paper's `hashtableMaxKey`): scans slots in
    /// order, strictly-greater comparison, so the *first* (lowest-slot)
    /// maximal entry wins — the paper's strict-LPA tie-break.
    pub fn max_key(&self) -> Option<(u32, V)> {
        max_scan(self.keys.iter().copied(), self.values.iter().copied())
    }

    /// Current occupied (key, value) pairs in slot order, for testing.
    pub fn entries(&self) -> Vec<(u32, V)> {
        self.keys
            .iter()
            .zip(self.values.iter())
            .filter(|(&k, _)| k != EMPTY_KEY)
            .map(|(&k, &v)| (k, v))
            .collect()
    }
}

/// Shared (block-cooperative) table view over atomic cells.
pub struct TableShared<'a, V: HashValue> {
    keys: &'a [AtomicU32],
    values: &'a [V::Atomic],
    p2: usize,
}

impl<'a, V: HashValue> TableShared<'a, V> {
    /// Wrap atomic key/value slices of equal length `p₁`.
    pub fn new(keys: &'a [AtomicU32], values: &'a [V::Atomic], p2: usize) -> Self {
        assert_eq!(keys.len(), values.len(), "key/value slice length mismatch");
        TableShared { keys, values, p2 }
    }

    /// Usable capacity `p₁`.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Shadow-memory identity of this table (see [`TableMut`]).
    #[cfg(feature = "sancheck")]
    #[inline]
    fn tid(&self) -> usize {
        self.keys.as_ptr() as usize
    }

    /// Clear one slot (used by the block kernel's strided parallel clear).
    pub fn clear_slot(&self, s: usize) {
        #[cfg(feature = "sancheck")]
        hooks::table_clear_slot(self.tid(), s);
        self.keys[s].store(EMPTY_KEY, Ordering::Relaxed);
        V::atomic_store(&self.values[s], V::zero());
    }

    /// Clear all slots (sequential convenience for tests).
    pub fn clear(&self) {
        for s in 0..self.keys.len() {
            self.clear_slot(s);
        }
    }

    /// Accumulate `weight` onto `key` (Algorithm 2, shared path):
    /// `atomicCAS` claims empty slots, `atomicAdd` accumulates.
    pub fn accumulate(&self, strategy: ProbeStrategy, key: u32, weight: V) -> Accumulate {
        debug_assert_ne!(key, EMPTY_KEY);
        let p1 = self.keys.len();
        if p1 == 0 {
            return Accumulate::Failed;
        }
        let mut seq = ProbeSeq::new(strategy, key, p1, self.p2);
        let retries = probe_budget(p1);
        #[cfg(feature = "sancheck")]
        hooks::probe_start(self.tid(), p1, (retries + p1 as u32) as u64);
        let mut probes = 0u32;
        let mut last = 0usize;
        while probes < retries {
            let s = seq.slot();
            last = s;
            probes += 1;
            #[cfg(feature = "sancheck")]
            hooks::probe_slot(self.tid(), s);
            if self.try_slot(s, key, weight) {
                #[cfg(feature = "sancheck")]
                {
                    hooks::claim(self.tid(), key, s);
                    hooks::probe_end(self.tid());
                }
                return Accumulate::Done {
                    slot: s,
                    probes,
                    fallback_scans: 0,
                };
            }
            seq.advance();
        }
        for off in 1..=p1 {
            let s = (last + off) % p1;
            #[cfg(feature = "sancheck")]
            hooks::probe_slot(self.tid(), s);
            if self.try_slot(s, key, weight) {
                #[cfg(feature = "sancheck")]
                {
                    hooks::claim(self.tid(), key, s);
                    hooks::probe_end(self.tid());
                }
                return Accumulate::Done {
                    slot: s,
                    probes,
                    fallback_scans: off as u32,
                };
            }
        }
        #[cfg(feature = "sancheck")]
        hooks::probe_end(self.tid());
        Accumulate::Failed
    }

    /// Metered variant of [`Self::accumulate`].
    pub fn accumulate_metered(
        &self,
        strategy: ProbeStrategy,
        key: u32,
        weight: V,
        addr: TableAddr,
        meter: &mut LaneMeter,
        cost: &CostModel,
    ) -> Accumulate {
        meter.probe_scope(true);
        let r = self.accumulate_metered_inner(strategy, key, weight, addr, meter, cost);
        meter.probe_scope(false);
        r
    }

    fn accumulate_metered_inner(
        &self,
        strategy: ProbeStrategy,
        key: u32,
        weight: V,
        addr: TableAddr,
        meter: &mut LaneMeter,
        cost: &CostModel,
    ) -> Accumulate {
        debug_assert_ne!(key, EMPTY_KEY);
        let p1 = self.keys.len();
        if p1 == 0 {
            return Accumulate::Failed;
        }
        let mut seq = ProbeSeq::new(strategy, key, p1, self.p2);
        let retries = probe_budget(p1);
        #[cfg(feature = "sancheck")]
        hooks::probe_start(self.tid(), p1, (retries + p1 as u32) as u64);
        let mut probes = 0u32;
        let mut last = 0usize;
        while probes < retries {
            let s = seq.slot();
            last = s;
            probes += 1;
            #[cfg(feature = "sancheck")]
            hooks::probe_slot(self.tid(), s);
            meter.probe();
            meter.alu(cost, 2);
            meter.global_read(cost, addr.keys + s, Width::W32);
            let k = self.keys[s].load(Ordering::Relaxed);
            if k == key || k == EMPTY_KEY {
                meter.atomic(cost, addr.keys + s, Width::W32); // atomicCAS
                if self.try_slot(s, key, weight) {
                    meter.atomic(cost, addr.values + s, V::WIDTH); // atomicAdd
                    meter.probe_done(probes as u64);
                    #[cfg(feature = "sancheck")]
                    {
                        hooks::claim(self.tid(), key, s);
                        hooks::probe_end(self.tid());
                    }
                    return Accumulate::Done {
                        slot: s,
                        probes,
                        fallback_scans: 0,
                    };
                }
            }
            seq.advance();
        }
        for off in 1..=p1 {
            let s = (last + off) % p1;
            #[cfg(feature = "sancheck")]
            hooks::probe_slot(self.tid(), s);
            meter.probe();
            meter.global_read(cost, addr.keys + s, Width::W32);
            let k = self.keys[s].load(Ordering::Relaxed);
            if (k == key || k == EMPTY_KEY) && self.try_slot(s, key, weight) {
                meter.atomic(cost, addr.keys + s, Width::W32);
                meter.atomic(cost, addr.values + s, V::WIDTH);
                meter.probe_done(probes as u64 + off as u64);
                #[cfg(feature = "sancheck")]
                {
                    hooks::claim(self.tid(), key, s);
                    hooks::probe_end(self.tid());
                }
                return Accumulate::Done {
                    slot: s,
                    probes,
                    fallback_scans: off as u32,
                };
            }
        }
        #[cfg(feature = "sancheck")]
        hooks::probe_end(self.tid());
        Accumulate::Failed
    }

    #[inline]
    fn try_slot(&self, s: usize, key: u32, weight: V) -> bool {
        // Peek first (cheap), then CAS — Algorithm 2's structure.
        let k = self.keys[s].load(Ordering::Relaxed);
        if k != key && k != EMPTY_KEY {
            return false;
        }
        let old = self.keys[s]
            .compare_exchange(EMPTY_KEY, key, Ordering::Relaxed, Ordering::Relaxed)
            .unwrap_or_else(|actual| actual);
        if old == EMPTY_KEY || old == key {
            V::atomic_add(&self.values[s], weight);
            true
        } else {
            false
        }
    }

    /// Most-weighted key with first-max tie-break (sequential scan; the
    /// block kernel charges the parallel-reduction cost separately via
    /// [`nulpa_simt::BlockCtx::charge_reduction`]).
    pub fn max_key(&self) -> Option<(u32, V)> {
        max_scan(
            self.keys.iter().map(|k| k.load(Ordering::Relaxed)),
            self.values.iter().map(|v| V::atomic_load(v)),
        )
    }
}

/// Probe budget before the linear fallback: `MAX_RETRIES`, but never more
/// than `2·p₁`. On tiny tables the quadratic-double recurrence can cycle
/// over a strict subset of slots (e.g. step pattern 1,2,1,2 mod 3 never
/// reaches the third slot), and burning all 64 retries there would
/// dominate the runtime of low-degree graphs — road networks and k-mer
/// graphs, half the paper's dataset.
///
/// Public because it *is* the declared probe bound of every table
/// operation: the static verifier (`nulpa-check`) checks each kernel's
/// declared `ProbeBound` against this budget, and the dynamic checker
/// (`nulpa-sancheck`) receives `probe_budget(p1) + p1` as the hard cap a
/// probe loop may not exceed (strategy steps plus the linear fallback).
#[inline]
pub fn probe_budget(p1: usize) -> u32 {
    MAX_RETRIES.min(2 * p1 as u32)
}

/// Shared first-max scan: strictly-greater keeps the earliest maximal slot.
fn max_scan<V: HashValue>(
    keys: impl Iterator<Item = u32>,
    values: impl Iterator<Item = V>,
) -> Option<(u32, V)> {
    let mut best: Option<(u32, V)> = None;
    for (k, v) in keys.zip(values) {
        if k == EMPTY_KEY {
            continue;
        }
        match best {
            None => best = Some((k, v)),
            Some((_, bv)) => {
                if v > bv {
                    best = Some((k, v));
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{capacity_for_degree, secondary_prime};
    use std::collections::BTreeMap;

    fn fresh(cap: usize) -> (Vec<u32>, Vec<f32>) {
        (vec![EMPTY_KEY; cap], vec![0.0; cap])
    }

    fn table<'a>(k: &'a mut [u32], v: &'a mut [f32]) -> TableMut<'a, f32> {
        let p2 = secondary_prime(k.len());
        TableMut::new(k, v, p2)
    }

    #[test]
    fn insert_and_lookup() {
        let (mut k, mut v) = fresh(7);
        let mut t = table(&mut k, &mut v);
        assert!(t
            .accumulate(ProbeStrategy::QuadraticDouble, 3, 2.0)
            .is_done());
        assert!(t
            .accumulate(ProbeStrategy::QuadraticDouble, 3, 1.5)
            .is_done());
        assert_eq!(t.max_key(), Some((3, 3.5)));
    }

    #[test]
    fn differential_against_btreemap_all_strategies() {
        // random-ish key streams, compare totals against a reference map
        for strategy in ProbeStrategy::all() {
            let keys = [5u32, 9, 5, 14, 23, 9, 9, 3, 14, 5, 100, 3];
            let cap = capacity_for_degree(keys.len());
            let (mut kk, mut vv) = fresh(cap);
            let mut t = table(&mut kk, &mut vv);
            let mut reference: BTreeMap<u32, f32> = BTreeMap::new();
            for (i, &k) in keys.iter().enumerate() {
                let w = (i as f32 + 1.0) * 0.5;
                assert!(t.accumulate(strategy, k, w).is_done(), "{strategy:?}");
                *reference.entry(k).or_insert(0.0) += w;
            }
            let mut got: BTreeMap<u32, f32> = t.entries().into_iter().collect();
            assert_eq!(got.len(), reference.len(), "{strategy:?}");
            for (k, v) in reference {
                let g = got.remove(&k).unwrap();
                assert!((g - v).abs() < 1e-6, "{strategy:?} key {k}: {g} vs {v}");
            }
        }
    }

    #[test]
    fn fills_to_capacity_without_failure() {
        // worst case: all keys distinct, exactly capacity of them
        for strategy in ProbeStrategy::all() {
            let cap = 15;
            let (mut kk, mut vv) = fresh(cap);
            let mut t = table(&mut kk, &mut vv);
            for i in 0..cap as u32 {
                // adversarial keys all congruent mod p1
                let key = i * cap as u32 + 1;
                assert!(
                    t.accumulate(strategy, key, 1.0).is_done(),
                    "{strategy:?} failed at {i}"
                );
            }
            assert_eq!(t.entries().len(), cap);
        }
    }

    #[test]
    fn fails_only_when_full_and_key_absent() {
        let (mut kk, mut vv) = fresh(3);
        let mut t = table(&mut kk, &mut vv);
        for key in [1u32, 2, 3] {
            assert!(t.accumulate(ProbeStrategy::Linear, key, 1.0).is_done());
        }
        // table full; existing key still works
        assert!(t.accumulate(ProbeStrategy::Linear, 2, 1.0).is_done());
        // new key cannot fit
        assert_eq!(
            t.accumulate(ProbeStrategy::Linear, 9, 1.0),
            Accumulate::Failed
        );
    }

    #[test]
    fn clear_resets() {
        let (mut kk, mut vv) = fresh(7);
        let mut t = table(&mut kk, &mut vv);
        t.accumulate(ProbeStrategy::Linear, 1, 1.0);
        t.clear();
        assert_eq!(t.max_key(), None);
        assert!(t.entries().is_empty());
    }

    #[test]
    fn max_key_first_max_tiebreak() {
        let (mut kk, mut vv) = fresh(7);
        let mut t = table(&mut kk, &mut vv);
        // keys 0 and 1 land in slots 0 and 1 with linear probing
        t.accumulate(ProbeStrategy::Linear, 0, 2.0);
        t.accumulate(ProbeStrategy::Linear, 1, 2.0);
        // equal weights: slot 0's key wins
        assert_eq!(t.max_key(), Some((0, 2.0)));
    }

    #[test]
    fn empty_table_has_no_max() {
        let (mut kk, mut vv) = fresh(7);
        let t = table(&mut kk, &mut vv);
        assert_eq!(t.max_key(), None);
    }

    #[test]
    fn zero_capacity_fails_cleanly() {
        let (mut kk, mut vv) = fresh(0);
        let mut t = TableMut::<f32>::new(&mut kk, &mut vv, 1);
        assert_eq!(
            t.accumulate(ProbeStrategy::Linear, 1, 1.0),
            Accumulate::Failed
        );
        assert_eq!(t.max_key(), None);
    }

    #[test]
    fn shared_matches_unshared() {
        let cap = capacity_for_degree(10);
        let p2 = secondary_prime(cap);
        let keys: Vec<AtomicU32> = (0..cap).map(|_| AtomicU32::new(EMPTY_KEY)).collect();
        let values: Vec<nulpa_simt::AtomicF32> = (0..cap).map(|_| Default::default()).collect();
        let shared = TableShared::<f32>::new(&keys, &values, p2);

        let (mut kk, mut vv) = fresh(cap);
        let mut unshared = TableMut::<f32>::new(&mut kk, &mut vv, p2);

        for (i, key) in [7u32, 3, 7, 7, 12, 3, 40].into_iter().enumerate() {
            let w = i as f32 + 1.0;
            assert!(shared
                .accumulate(ProbeStrategy::QuadraticDouble, key, w)
                .is_done());
            assert!(unshared
                .accumulate(ProbeStrategy::QuadraticDouble, key, w)
                .is_done());
        }
        assert_eq!(shared.max_key(), unshared.max_key());
    }

    #[test]
    fn shared_concurrent_accumulation_is_exact() {
        use std::sync::Arc;
        let cap = capacity_for_degree(64);
        let p2 = secondary_prime(cap);
        let keys: Arc<Vec<AtomicU32>> =
            Arc::new((0..cap).map(|_| AtomicU32::new(EMPTY_KEY)).collect());
        let values: Arc<Vec<nulpa_simt::AtomicF32>> =
            Arc::new((0..cap).map(|_| Default::default()).collect());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let keys = Arc::clone(&keys);
                let values = Arc::clone(&values);
                std::thread::spawn(move || {
                    let t = TableShared::<f32>::new(&keys, &values, p2);
                    for i in 0..256u32 {
                        let key = i % 16;
                        assert!(t
                            .accumulate(ProbeStrategy::QuadraticDouble, key, 1.0)
                            .is_done());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let t = TableShared::<f32>::new(&keys, &values, p2);
        // every key 0..16 accumulated exactly 4 * 16 = 64 (integer adds: exact)
        let (_, v) = t.max_key().unwrap();
        assert_eq!(v, 64.0);
    }

    #[test]
    fn shared_clear_slot() {
        let cap = 7;
        let p2 = secondary_prime(cap);
        let keys: Vec<AtomicU32> = (0..cap).map(|_| AtomicU32::new(EMPTY_KEY)).collect();
        let values: Vec<nulpa_simt::AtomicF32> = (0..cap).map(|_| Default::default()).collect();
        let t = TableShared::<f32>::new(&keys, &values, p2);
        t.accumulate(ProbeStrategy::Linear, 2, 5.0);
        t.clear();
        assert_eq!(t.max_key(), None);
    }

    #[test]
    fn metered_accumulate_counts_probes() {
        let cap = 7;
        let (mut kk, mut vv) = fresh(cap);
        let p2 = secondary_prime(cap);
        let mut t = TableMut::<f32>::new(&mut kk, &mut vv, p2);
        let cost = CostModel::default_gpu();
        let mut m = LaneMeter::new();
        let addr = TableAddr::from_start(0, 1000);
        // two keys that collide on slot 0 (both ≡ 0 mod 7)
        t.accumulate_metered(ProbeStrategy::Linear, 7, 1.0, addr, &mut m, &cost);
        t.accumulate_metered(ProbeStrategy::Linear, 14, 1.0, addr, &mut m, &cost);
        assert_eq!(m.probes, 3); // 1 for first insert, 2 for the collided one
        assert!(m.cycles > 0);
        assert!(m.global_reads >= 3);
        // probe_done recorded one sequence per accumulate: lengths 1 and 2
        assert_eq!(m.probe_hist.count, 2);
        assert_eq!(m.probe_hist.sum, 3);
        assert_eq!(m.probe_hist.max, 2);
    }

    #[test]
    fn metered_and_unmetered_agree_on_state() {
        let cap = capacity_for_degree(8);
        let p2 = secondary_prime(cap);
        let cost = CostModel::default_gpu();
        let addr = TableAddr::from_start(0, 64);
        let keys = [3u32, 19, 3, 8, 19, 19];

        let (mut k1, mut v1) = fresh(cap);
        let mut a = TableMut::<f32>::new(&mut k1, &mut v1, p2);
        let (mut k2, mut v2) = fresh(cap);
        let mut b = TableMut::<f32>::new(&mut k2, &mut v2, p2);
        let mut m = LaneMeter::new();
        for &key in &keys {
            a.accumulate(ProbeStrategy::QuadraticDouble, key, 1.0);
            b.accumulate_metered(
                ProbeStrategy::QuadraticDouble,
                key,
                1.0,
                addr,
                &mut m,
                &cost,
            );
        }
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    fn f64_values_work() {
        let (mut kk, _) = fresh(7);
        let mut vv = vec![0.0f64; 7];
        let mut t = TableMut::<f64>::new(&mut kk, &mut vv, 15);
        t.accumulate(ProbeStrategy::Double, 4, 0.5);
        t.accumulate(ProbeStrategy::Double, 4, 0.25);
        assert_eq!(t.max_key(), Some((4, 0.75)));
    }
}
