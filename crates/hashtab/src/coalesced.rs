//! Coalesced-chaining hashtable (paper Fig. 7, appendix).
//!
//! The paper also evaluated a coalesced-hashing table — separate chaining
//! threaded through the open-addressed array via a `nexts` array `H_n` —
//! and found it did **not** improve on the default open-addressing design.
//! This implementation exists to regenerate that comparison.
//!
//! Layout: the same per-vertex regions as [`crate::layout`], plus a third
//! global buffer for `H_n`. Collisions chain: a key hashing to an occupied
//! slot walks the chain; if the key is absent, a free *cellar* slot is
//! claimed by a cursor scanning from the top of the table and linked to
//! the chain tail.

use crate::layout::EMPTY_KEY;
use crate::value::HashValue;
use nulpa_simt::{CostModel, LaneMeter, Width};

/// Buffer base addresses for the three global arrays (`H_k`, `H_v`,
/// `H_n` live in separate `2|E|` buffers, like the default design's
/// `buf_k`/`buf_v` — metering them contiguously would hand coalesced
/// chaining an unreal locality advantage).
#[derive(Clone, Copy, Debug)]
pub struct CoalescedAddr {
    /// Word address of `H_k[0]`.
    pub keys: usize,
    /// Word address of `H_v[0]`.
    pub values: usize,
    /// Word address of `H_n[0]`.
    pub nexts: usize,
}

/// `H_n` entry meaning "end of chain".
pub const NO_NEXT: u32 = u32::MAX;

/// Exclusive coalesced-chaining table view.
pub struct CoalescedTable<'a, V: HashValue> {
    keys: &'a mut [u32],
    values: &'a mut [V],
    nexts: &'a mut [u32],
    /// Free-slot cursor, scanning downwards from the table top.
    cursor: usize,
}

/// Result of a coalesced accumulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoalescedAccumulate {
    /// Stored at `slot` after following `chain_steps` links.
    Done {
        /// Final slot.
        slot: usize,
        /// Chain links traversed.
        chain_steps: u32,
    },
    /// No free slot remains (cannot happen with layout-guaranteed
    /// capacity).
    Failed,
}

impl CoalescedAccumulate {
    /// `true` for [`CoalescedAccumulate::Done`].
    pub fn is_done(self) -> bool {
        matches!(self, CoalescedAccumulate::Done { .. })
    }
}

impl<'a, V: HashValue> CoalescedTable<'a, V> {
    /// Wrap key/value/next slices of equal length.
    pub fn new(keys: &'a mut [u32], values: &'a mut [V], nexts: &'a mut [u32]) -> Self {
        assert_eq!(keys.len(), values.len());
        assert_eq!(keys.len(), nexts.len());
        let cursor = keys.len();
        CoalescedTable {
            keys,
            values,
            nexts,
            cursor,
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Reset all slots and the free cursor.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY_KEY);
        self.values.fill(V::zero());
        self.nexts.fill(NO_NEXT);
        self.cursor = self.keys.len();
    }

    /// Accumulate `weight` onto `key`, charging `meter` if provided.
    pub fn accumulate(
        &mut self,
        key: u32,
        weight: V,
        mut meter: Option<(&mut LaneMeter, &CostModel, CoalescedAddr)>,
    ) -> CoalescedAccumulate {
        debug_assert_ne!(key, EMPTY_KEY);
        let p1 = self.keys.len();
        if p1 == 0 {
            return CoalescedAccumulate::Failed;
        }
        let mut s = key as usize % p1;
        let mut steps = 0u32;
        loop {
            if let Some((m, c, a)) = meter.as_mut() {
                m.probe();
                m.alu(c, 2);
                m.global_read(c, a.keys + s, Width::W32);
            }
            if self.keys[s] == EMPTY_KEY {
                self.keys[s] = key;
                self.values[s] = weight;
                if let Some((m, c, a)) = meter.as_mut() {
                    m.global_write(c, a.keys + s, Width::W32);
                    m.global_write(c, a.values + s, V::WIDTH);
                }
                return CoalescedAccumulate::Done {
                    slot: s,
                    chain_steps: steps,
                };
            }
            if self.keys[s] == key {
                self.values[s] = self.values[s].add(weight);
                if let Some((m, c, a)) = meter.as_mut() {
                    m.global_read(c, a.values + s, V::WIDTH);
                    m.global_write(c, a.values + s, V::WIDTH);
                }
                return CoalescedAccumulate::Done {
                    slot: s,
                    chain_steps: steps,
                };
            }
            // follow or extend the chain
            if self.nexts[s] != NO_NEXT {
                if let Some((m, c, a)) = meter.as_mut() {
                    m.global_read(c, a.nexts + s, Width::W32);
                }
                s = self.nexts[s] as usize;
                steps += 1;
                continue;
            }
            // find a free cellar slot from the top
            let free = loop {
                if self.cursor == 0 {
                    return CoalescedAccumulate::Failed;
                }
                self.cursor -= 1;
                if let Some((m, c, a)) = meter.as_mut() {
                    m.global_read(c, a.keys + self.cursor, Width::W32);
                }
                if self.keys[self.cursor] == EMPTY_KEY {
                    break self.cursor;
                }
            };
            self.keys[free] = key;
            self.values[free] = weight;
            self.nexts[s] = free as u32;
            if let Some((m, c, a)) = meter.as_mut() {
                m.global_write(c, a.keys + free, Width::W32);
                m.global_write(c, a.values + free, V::WIDTH);
                m.global_write(c, a.nexts + s, Width::W32);
            }
            return CoalescedAccumulate::Done {
                slot: free,
                chain_steps: steps + 1,
            };
        }
    }

    /// Most-weighted key, first-max tie-break (scan order).
    pub fn max_key(&self) -> Option<(u32, V)> {
        let mut best: Option<(u32, V)> = None;
        for (&k, &v) in self.keys.iter().zip(self.values.iter()) {
            if k == EMPTY_KEY {
                continue;
            }
            match best {
                None => best = Some((k, v)),
                Some((_, bv)) => {
                    if v > bv {
                        best = Some((k, v));
                    }
                }
            }
        }
        best
    }

    /// Occupied entries, for tests.
    pub fn entries(&self) -> Vec<(u32, V)> {
        self.keys
            .iter()
            .zip(self.values.iter())
            .filter(|(&k, _)| k != EMPTY_KEY)
            .map(|(&k, &v)| (k, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn fresh(cap: usize) -> (Vec<u32>, Vec<f32>, Vec<u32>) {
        (vec![EMPTY_KEY; cap], vec![0.0; cap], vec![NO_NEXT; cap])
    }

    #[test]
    fn insert_lookup_accumulate() {
        let (mut k, mut v, mut n) = fresh(7);
        let mut t = CoalescedTable::new(&mut k, &mut v, &mut n);
        assert!(t.accumulate(3, 1.0, None).is_done());
        assert!(t.accumulate(3, 2.0, None).is_done());
        assert_eq!(t.max_key(), Some((3, 3.0)));
    }

    #[test]
    fn collisions_chain_through_cellar() {
        let (mut k, mut v, mut n) = fresh(7);
        let mut t = CoalescedTable::new(&mut k, &mut v, &mut n);
        // keys 0, 7, 14 all hash to slot 0
        assert!(t.accumulate(0, 1.0, None).is_done());
        let r = t.accumulate(7, 1.0, None);
        assert!(matches!(
            r,
            CoalescedAccumulate::Done { chain_steps: 1, .. }
        ));
        let r = t.accumulate(14, 1.0, None);
        assert!(matches!(
            r,
            CoalescedAccumulate::Done { chain_steps: 2, .. }
        ));
        // re-accumulating a chained key finds it again
        assert!(t.accumulate(14, 1.0, None).is_done());
        assert_eq!(t.entries().len(), 3);
    }

    #[test]
    fn differential_against_btreemap() {
        let keys = [5u32, 9, 5, 14, 23, 9, 9, 3, 14, 5, 100, 3, 2, 16];
        let (mut k, mut v, mut n) = fresh(crate::layout::capacity_for_degree(keys.len()));
        let mut t = CoalescedTable::new(&mut k, &mut v, &mut n);
        let mut reference: BTreeMap<u32, f32> = BTreeMap::new();
        for (i, &key) in keys.iter().enumerate() {
            let w = i as f32 + 1.0;
            assert!(t.accumulate(key, w, None).is_done());
            *reference.entry(key).or_insert(0.0) += w;
        }
        let got: BTreeMap<u32, f32> = t.entries().into_iter().collect();
        assert_eq!(got, reference);
    }

    #[test]
    fn fills_to_capacity() {
        let cap = 15;
        let (mut k, mut v, mut n) = fresh(cap);
        let mut t = CoalescedTable::new(&mut k, &mut v, &mut n);
        for i in 0..cap as u32 {
            assert!(t.accumulate(i * cap as u32, 1.0, None).is_done(), "at {i}");
        }
        assert_eq!(t.entries().len(), cap);
        assert!(!t.accumulate(999, 1.0, None).is_done());
    }

    #[test]
    fn clear_resets_cursor_and_chains() {
        let (mut k, mut v, mut n) = fresh(7);
        let mut t = CoalescedTable::new(&mut k, &mut v, &mut n);
        for i in 0..7u32 {
            t.accumulate(i * 7, 1.0, None);
        }
        t.clear();
        assert_eq!(t.max_key(), None);
        for i in 0..7u32 {
            assert!(t.accumulate(i * 7, 1.0, None).is_done());
        }
    }

    #[test]
    fn metered_charges_chain_walks() {
        let (mut k, mut v, mut n) = fresh(7);
        let mut t = CoalescedTable::new(&mut k, &mut v, &mut n);
        let cost = CostModel::default_gpu();
        let mut m = LaneMeter::new();
        let addr = CoalescedAddr {
            keys: 0,
            values: 100,
            nexts: 200,
        };
        t.accumulate(0, 1.0, Some((&mut m, &cost, addr)));
        t.accumulate(7, 1.0, Some((&mut m, &cost, addr)));
        assert!(m.probes >= 2);
        assert!(m.cycles > 0);
    }

    #[test]
    fn zero_capacity_fails() {
        let (mut k, mut v, mut n) = fresh(0);
        let mut t = CoalescedTable::new(&mut k, &mut v, &mut n);
        assert!(!t.accumulate(1, 1.0, None).is_done());
    }
}
