//! Layer 1 — the effect solver.
//!
//! Takes the declared [`Effects`] of every kernel and discharges, by
//! case analysis over the symbolic address expressions, the five static
//! invariants (DESIGN.md "Effect system & static invariants"):
//!
//! 1. **Lane-pairwise disjointness** — within a lockstep wave, no two
//!    execution units may issue plain writes with differing values to
//!    one cell, and no plain write may race an atomic
//!    ([`FindingKind::LaneWriteRace`]).
//! 2. **Staged-write discipline** — an immediate plain write must not be
//!    reachable by another lane's same-wave read
//!    ([`FindingKind::UnstagedSameWaveRead`]).
//! 3. **Barrier uniformity** — every barrier site must be dominated by a
//!    block-uniform predicate ([`FindingKind::DivergentBarrier`]).
//! 4. **Probe budgets** — probe loops must declare the bound the table
//!    code enforces ([`FindingKind::ProbeBudgetOverrun`]).
//! 5. **Immediate-write confinement** — immediate semantics stay inside
//!    immediate-class launches, and even there stay lane-disjoint
//!    ([`FindingKind::ImmediateWriteEscape`]).
//!
//! plus region validity ([`FindingKind::RegionOob`]): every index
//! expression must stay inside its region for *all* CSR layouts.
//!
//! # The disjointness oracle
//!
//! The whole analysis bottoms out in one question: can the address sets
//! of two *distinct* execution units `u ≠ u′` intersect? The answer per
//! index-expression pair (see [`overlap_witness`]):
//!
//! * `OwnVertex` × `OwnVertex` — disjoint when the launch guarantees
//!   distinct items (ν-LPA's candidate sets do).
//! * anything × `Neighbor` or `LabelValue` — may overlap: two vertices
//!   can share a neighbour, and a label value is an arbitrary vertex id.
//! * `CsrInterval{s,e}` × `CsrInterval{s,e}` — CSR offsets satisfy
//!   `off(u′) ≥ off(u) + deg(u)` for `u < u′`, so `u`'s interval
//!   `[s·off(u), s·off(u) + e·deg(u))` ends at or before `u′`'s starts
//!   **iff `e ≤ s`** — the same inequality that keeps the interval
//!   inside a region of extent `s·m`. One inequality discharges both
//!   the pairwise-overlap and the out-of-bounds question.
//! * `Dn` `Fixed` × `Fixed` — always the same word: atomic-required.
//!
//! Verdicts are sound for all graphs because they use only the CSR
//! monotonicity invariant, never a concrete layout. The concrete
//! [`AddrMap`] is cross-validated separately ([`verify_layout`]) so the
//! symbolic region model and the addresses the kernels actually charge
//! cannot drift apart.

use crate::report::{CheckReport, Finding, FindingKind, LanePair};
use nulpa_core::AddrMap;
use nulpa_hashtab::MAX_RETRIES;
use nulpa_simt::effects::{
    AccessEffect, AccessKind, AddrExpr, Effects, EffectsRegistry, IndexExpr, KernelFlavor,
    LaneOrder, Pred, ProbeBound, Region, StagingClass, Visibility,
};

/// Verify every registered kernel, returning all findings.
pub fn verify(registry: &EffectsRegistry) -> CheckReport {
    let mut rep = CheckReport::default();
    verify_layout(&mut rep);
    for e in registry.iter() {
        verify_kernel(e, &mut rep);
    }
    rep.kernels_checked = registry.len();
    rep
}

/// Cross-validate the symbolic region model against the concrete
/// [`AddrMap`] layout: every region's range must have exactly the
/// declared symbolic extent, and the regions must tile the address space
/// in declaration order with no gap or overlap. A mismatch means the
/// solver's "different region ⇒ disjoint" axiom is unsound for the
/// shipped layout, so it is reported as a finding rather than trusted.
pub fn verify_layout(rep: &mut CheckReport) {
    for (n, m) in [(0usize, 0usize), (1, 0), (5, 0), (100, 400), (7, 13)] {
        let a = AddrMap::new(n, m);
        let mut next = 0usize;
        for r in Region::GLOBAL {
            let range = a.region_range(r);
            rep.facts_checked += 2;
            if range.start != next || range.len() != r.extent(n, m) {
                rep.push(Finding {
                    kind: FindingKind::RegionOob,
                    kernel: "addr-map".to_string(),
                    addr: format!("{}[{}..{})", r.name(), range.start, range.end),
                    site: "layout cross-validation".to_string(),
                    witness: None,
                    detail: format!(
                        "concrete AddrMap(n={n}, m={m}) disagrees with the symbolic \
                         region model: expected start {next}, extent {}",
                        r.extent(n, m)
                    ),
                });
                return;
            }
            next = range.end;
        }
    }
}

fn verify_kernel(e: &Effects, rep: &mut CheckReport) {
    // Region validity for every declared access.
    for a in &e.accesses {
        rep.facts_checked += 1;
        if let Some(f) = validity_finding(e, a) {
            rep.push(f);
        }
    }

    // Pairwise checks — only meaningful for lockstep launches, where
    // lanes of a wave are unordered. The Sequential order (Cross-Check)
    // makes lane order part of the semantics; its discipline is enforced
    // by the confinement rule instead.
    if e.order == LaneOrder::Lockstep {
        for (i, a) in e.accesses.iter().enumerate() {
            // A write can race *itself* across two lanes, so the pair
            // enumeration includes (i, i).
            for b in e.accesses.iter().skip(i) {
                check_pair(e, a, b, rep);
            }
        }
    }

    // Barrier uniformity.
    for site in &e.barriers {
        rep.facts_checked += 1;
        if e.flavor != KernelFlavor::BlockPerItem {
            rep.push(Finding {
                kind: FindingKind::DivergentBarrier,
                kernel: e.kernel.to_string(),
                addr: format!("barrier `{}`", site.site),
                site: site.site.to_string(),
                witness: None,
                detail: "barrier declared in a thread-per-item kernel — there is no \
                         block to synchronise"
                    .to_string(),
            });
            continue;
        }
        if site.pred == Pred::LaneDivergent {
            rep.push(Finding {
                kind: FindingKind::DivergentBarrier,
                kernel: e.kernel.to_string(),
                addr: format!("barrier `{}`", site.site),
                site: site.site.to_string(),
                witness: Some(LanePair::new(
                    "lane 0 reaches the barrier; lane 1's predicate is false and it \
                     has exited the scope",
                )),
                detail: "barrier dominated by a lane-divergent predicate — undefined \
                         behaviour for __syncthreads() on hardware"
                    .to_string(),
            });
        }
    }

    // Probe budget conformance.
    rep.facts_checked += 1;
    match e.probes {
        ProbeBound::None | ProbeBound::Bounded { .. } if !probes_tables(e) => {
            // No table accesses declared: nothing to bound.
        }
        ProbeBound::None => rep.push(Finding {
            kind: FindingKind::ProbeBudgetOverrun,
            kernel: e.kernel.to_string(),
            addr: "probe loop".to_string(),
            site: "probe bound".to_string(),
            witness: None,
            detail: "kernel accesses hashtable regions but declares no probe bound".to_string(),
        }),
        ProbeBound::Unbounded => rep.push(Finding {
            kind: FindingKind::ProbeBudgetOverrun,
            kernel: e.kernel.to_string(),
            addr: "probe loop".to_string(),
            site: "probe bound".to_string(),
            witness: None,
            detail: "probe loop declared unbounded — Algorithm 2's termination \
                     argument is not established"
                .to_string(),
        }),
        ProbeBound::Bounded {
            budget,
            fallback_linear,
        } => {
            if budget != MAX_RETRIES {
                rep.push(Finding {
                    kind: FindingKind::ProbeBudgetOverrun,
                    kernel: e.kernel.to_string(),
                    addr: "probe loop".to_string(),
                    site: "probe bound".to_string(),
                    witness: None,
                    detail: format!(
                        "declared probe budget {budget} diverges from the enforced \
                         global budget MAX_RETRIES = {MAX_RETRIES} (per-table budget \
                         is min({MAX_RETRIES}, 2·p₁))"
                    ),
                });
            }
            if !fallback_linear {
                rep.push(Finding {
                    kind: FindingKind::ProbeBudgetOverrun,
                    kernel: e.kernel.to_string(),
                    addr: "probe loop".to_string(),
                    site: "probe bound".to_string(),
                    witness: None,
                    detail: "no linear fallback declared: non-linear probe sequences \
                             are not guaranteed to visit every slot, so termination \
                             within the budget is unproven"
                        .to_string(),
                });
            }
        }
    }

    // Immediate-write confinement.
    for a in &e.accesses {
        let AccessKind::Write {
            vis: Visibility::Immediate,
            ..
        } = a.kind
        else {
            continue;
        };
        rep.facts_checked += 1;
        match e.staging {
            StagingClass::Staged => {
                // Immediate plain writes in a staged-class kernel are
                // only legal to lane-private scratch (the CSR-carved
                // table regions and shared memory) — never to the
                // shared algorithm state.
                if a.addr.region.is_shared_state() {
                    rep.push(Finding {
                        kind: FindingKind::ImmediateWriteEscape,
                        kernel: e.kernel.to_string(),
                        addr: a.addr.render(),
                        site: a.site.to_string(),
                        witness: None,
                        detail: format!(
                            "staged-class kernel writes shared state region `{}` \
                             immediately — same-wave lanes would observe it before \
                             the wave boundary",
                            a.addr.region.name()
                        ),
                    });
                }
            }
            StagingClass::Immediate => {
                // Immediate-class kernels (Cross-Check) may write
                // through, but each immediate plain write must still be
                // lane-disjoint — otherwise its effect leaks across
                // lanes *within* the launch.
                if let Some(w) = overlap_witness(&a.addr, &a.addr, e.distinct_items) {
                    rep.push(Finding {
                        kind: FindingKind::ImmediateWriteEscape,
                        kernel: e.kernel.to_string(),
                        addr: a.addr.render(),
                        site: a.site.to_string(),
                        witness: Some(w),
                        detail: "immediate-class kernel's plain write is not confined \
                                 to lane-disjoint cells — use an atomic or stage it"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// Does the kernel declare any access to the hashtable regions?
fn probes_tables(e: &Effects) -> bool {
    e.accesses
        .iter()
        .any(|a| matches!(a.addr.region, Region::Keys | Region::Values))
        && e.accesses.iter().any(|a| {
            matches!(a.addr.region, Region::Keys | Region::Values)
                && !matches!(a.kind, AccessKind::Read)
        })
}

fn check_pair(e: &Effects, a: &AccessEffect, b: &AccessEffect, rep: &mut CheckReport) {
    rep.facts_checked += 1;
    let (wa, wb) = (plain_write(a), plain_write(b));

    // Write–write: two plain writes with possibly-differing values.
    // Idempotent pairs are exempt: every writer stores a constant and the
    // wave flush commits constants in a fixed site order (sets before
    // clears), so the outcome is lane-order independent.
    if let (Some((_, ia)), Some((_, ib))) = (wa, wb) {
        if !(ia && ib) {
            if let Some(w) = overlap_witness(&a.addr, &b.addr, e.distinct_items) {
                rep.push(pair_finding(
                    FindingKind::LaneWriteRace,
                    e,
                    a,
                    b,
                    w,
                    "two lanes may issue plain writes with differing values to one \
                     cell in the same wave — atomic-required",
                ));
                return;
            }
        }
    }

    // Mixed atomic/plain: an atomic takes effect immediately, a plain
    // write at its own time (immediate) or the flush (staged) — if the
    // cells can coincide across lanes the final value depends on
    // scheduling.
    let mixed = matches!(
        (&a.kind, &b.kind),
        (AccessKind::Atomic, AccessKind::Write { .. })
            | (AccessKind::Write { .. }, AccessKind::Atomic)
    );
    if mixed {
        if let Some(w) = overlap_witness(&a.addr, &b.addr, e.distinct_items) {
            rep.push(pair_finding(
                FindingKind::LaneWriteRace,
                e,
                a,
                b,
                w,
                "atomic and plain write may target one cell across lanes — the final \
                 value depends on wave scheduling",
            ));
            return;
        }
    }

    // Write–read: an *immediate* plain write observable by another
    // lane's read in the same wave. Staged writes are exempt — reads see
    // wave-start state by construction; atomics are the sanctioned
    // immediate mechanism (covered by the mixed rule above).
    let wr = |w: &AccessEffect, r: &AccessEffect| -> bool {
        matches!(
            w.kind,
            AccessKind::Write {
                vis: Visibility::Immediate,
                ..
            }
        ) && matches!(r.kind, AccessKind::Read)
    };
    for (w, r) in [(a, b), (b, a)] {
        if wr(w, r) {
            if let Some(wit) = overlap_witness(&w.addr, &r.addr, e.distinct_items) {
                rep.push(pair_finding(
                    FindingKind::UnstagedSameWaveRead,
                    e,
                    w,
                    r,
                    wit,
                    "immediate write reachable by a same-wave read of another lane \
                     with no intervening flush/wave boundary",
                ));
                return;
            }
        }
    }
}

fn pair_finding(
    kind: FindingKind,
    e: &Effects,
    a: &AccessEffect,
    b: &AccessEffect,
    witness: LanePair,
    detail: &str,
) -> Finding {
    let addr = if a.addr == b.addr {
        a.addr.render()
    } else {
        format!("{} ∩ {}", a.addr.render(), b.addr.render())
    };
    let site = if std::ptr::eq(a, b) || a.site == b.site {
        a.site.to_string()
    } else {
        format!("{} ↔ {}", a.site, b.site)
    };
    Finding {
        kind,
        kernel: e.kernel.to_string(),
        addr,
        site,
        witness: Some(witness),
        detail: detail.to_string(),
    }
}

fn plain_write(a: &AccessEffect) -> Option<(Visibility, bool)> {
    match a.kind {
        AccessKind::Write { vis, idempotent } => Some((vis, idempotent)),
        _ => None,
    }
}

/// Region/index validity: each expression must stay inside its region
/// for every CSR layout.
fn validity_finding(e: &Effects, a: &AccessEffect) -> Option<Finding> {
    let mk = |detail: String, witness: Option<LanePair>| Finding {
        kind: FindingKind::RegionOob,
        kernel: e.kernel.to_string(),
        addr: a.addr.render(),
        site: a.site.to_string(),
        witness,
        detail,
    };
    let vertex_indexed = matches!(
        a.addr.index,
        IndexExpr::OwnVertex | IndexExpr::Neighbor | IndexExpr::LabelValue
    );
    match a.addr.region {
        // Shared memory is private to its execution unit; any shape is
        // in-bounds by construction (the device model sizes it).
        Region::Shared => None,
        Region::Dn => (a.addr.index != IndexExpr::Fixed).then(|| {
            mk(
                "the dn region is a single dedicated word; only a fixed index is valid".into(),
                None,
            )
        }),
        Region::Labels | Region::Processed => {
            if vertex_indexed {
                None
            } else {
                Some(mk(
                    "vertex-indexed region addressed with a non-vertex expression".into(),
                    None,
                ))
            }
        }
        Region::Targets | Region::Weights => interval_finding(a, 1, mk),
        Region::Keys | Region::Values => interval_finding(a, 2, mk),
    }
}

/// A CSR interval is valid in an `s·m`-extent region iff its start scale
/// is exactly `s` and its extent scale is at most `s`: the region holds
/// `s` words per edge, vertex `v`'s carve starts at `s·off(v)`, and the
/// next carve starts at `s·off(v′) ≥ s·(off(v) + deg(v))`.
fn interval_finding(
    a: &AccessEffect,
    region_scale: u32,
    mk: impl Fn(String, Option<LanePair>) -> Finding,
) -> Option<Finding> {
    match a.addr.index {
        IndexExpr::CsrInterval {
            start_scale,
            extent_scale,
        } => {
            if start_scale != region_scale {
                return Some(mk(
                    format!(
                        "interval start scale {start_scale} does not match the region's \
                         {region_scale} words per edge — carves would misalign"
                    ),
                    None,
                ));
            }
            if extent_scale > start_scale {
                return Some(mk(
                    format!(
                        "extent scale {extent_scale} exceeds start scale {start_scale}: \
                         for any vertex with deg(v) > 0 the interval \
                         {start_scale}·off(v) + 0..{extent_scale}·deg(v) reaches past \
                         {start_scale}·off(v′) of the CSR successor (and past the \
                         region end at the last vertex)"
                    ),
                    Some(LanePair {
                        a: 0,
                        b: 1,
                        assignment: format!(
                            "v=0, v′=1 CSR-adjacent: off(v′) = off(v) + deg(v), so the \
                             overrun is {}·deg(v) words",
                            extent_scale - start_scale
                        ),
                    }),
                ));
            }
            None
        }
        _ => Some(mk(
            "edge-scaled region addressed with a non-interval expression".into(),
            None,
        )),
    }
}

/// The disjointness oracle: can the address sets of two distinct
/// execution units `u ≠ u′` intersect? `None` means *provably disjoint
/// for every graph*; `Some` carries the concrete lane-pair witness.
pub fn overlap_witness(a: &AddrExpr, b: &AddrExpr, distinct_items: bool) -> Option<LanePair> {
    use IndexExpr::*;
    if a.region != b.region {
        return None; // regions tile the address space (verify_layout)
    }
    if a.region == Region::Shared {
        return None; // per-unit private by construction
    }
    match (a.index, b.index) {
        (Fixed, Fixed) => Some(LanePair::new(
            "every lane addresses the region's single word — u=0 and u′=1 collide \
             unconditionally",
        )),
        (OwnVertex, OwnVertex) => {
            if distinct_items {
                None
            } else {
                Some(LanePair::new(
                    "items may repeat within a launch: u=0 and u′=1 both process vertex 0",
                ))
            }
        }
        (OwnVertex, Neighbor) | (Neighbor, OwnVertex) => Some(LanePair::new(
            "u=0, u′=1 with u ∈ N(u′): u′'s neighbour index equals u's own cell",
        )),
        (Neighbor, Neighbor) => Some(LanePair::new(
            "u=0, u′=1 sharing neighbour j=2: both lanes address cell j",
        )),
        (LabelValue, _) | (_, LabelValue) => Some(LanePair::new(
            "a label value is an arbitrary vertex id: c loaded by u′=1 may equal the \
             cell u=0 addresses",
        )),
        (
            CsrInterval {
                start_scale: s1,
                extent_scale: e1,
            },
            CsrInterval {
                start_scale: s2,
                extent_scale: e2,
            },
        ) => {
            if e1 <= s1 && e2 <= s2 && s1 == s2 {
                None // carves tile the region: off(u′) ≥ off(u) + deg(u)
            } else {
                Some(LanePair::new(format!(
                    "u=0, u′=1 CSR-adjacent: extent {}·deg(u) overruns the \
                     {}·off-aligned carve boundary",
                    e1.max(e2),
                    s1.min(s2)
                )))
            }
        }
        // Mixed vertex/interval indexing of one region is already a
        // region-oob finding; stay conservative here.
        _ => Some(LanePair::new(
            "mixed index spaces over one region — not provably disjoint",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_core::shipped_effects;
    use nulpa_simt::effects::AddrExpr;

    #[test]
    fn shipped_kernels_verify_clean() {
        let rep = verify(&shipped_effects());
        assert!(
            rep.is_clean(),
            "shipped kernels must be statically clean:\n{}",
            rep.render()
        );
        assert_eq!(rep.kernels_checked, 4);
        assert!(rep.facts_checked > 50, "suspiciously few facts discharged");
    }

    #[test]
    fn oracle_own_vertex_disjoint_only_with_distinct_items() {
        let own = AddrExpr::new(Region::Labels, IndexExpr::OwnVertex);
        assert!(overlap_witness(&own, &own, true).is_none());
        assert!(overlap_witness(&own, &own, false).is_some());
    }

    #[test]
    fn oracle_neighbor_and_label_value_always_overlap() {
        let own = AddrExpr::new(Region::Labels, IndexExpr::OwnVertex);
        let nbr = AddrExpr::new(Region::Labels, IndexExpr::Neighbor);
        let lv = AddrExpr::new(Region::Labels, IndexExpr::LabelValue);
        assert!(overlap_witness(&own, &nbr, true).is_some());
        assert!(overlap_witness(&nbr, &nbr, true).is_some());
        assert!(overlap_witness(&own, &lv, true).is_some());
    }

    #[test]
    fn oracle_intervals_disjoint_iff_extent_le_start() {
        let ok = AddrExpr::new(
            Region::Keys,
            IndexExpr::CsrInterval {
                start_scale: 2,
                extent_scale: 2,
            },
        );
        let bad = AddrExpr::new(
            Region::Keys,
            IndexExpr::CsrInterval {
                start_scale: 2,
                extent_scale: 3,
            },
        );
        assert!(overlap_witness(&ok, &ok, true).is_none());
        assert!(overlap_witness(&bad, &bad, true).is_some());
        assert!(overlap_witness(&ok, &bad, true).is_some());
    }

    #[test]
    fn oracle_different_regions_disjoint() {
        let a = AddrExpr::new(Region::Labels, IndexExpr::Neighbor);
        let b = AddrExpr::new(Region::Processed, IndexExpr::Neighbor);
        assert!(overlap_witness(&a, &b, true).is_none());
    }

    #[test]
    fn oracle_dn_always_collides() {
        let dn = AddrExpr::new(Region::Dn, IndexExpr::Fixed);
        assert!(overlap_witness(&dn, &dn, true).is_some());
    }

    #[test]
    fn layout_cross_validation_is_silent_on_shipped_map() {
        let mut rep = CheckReport::default();
        verify_layout(&mut rep);
        assert!(rep.is_clean(), "{}", rep.render());
    }
}
