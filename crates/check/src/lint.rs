//! Layer 2: the workspace invariant linter.
//!
//! Four lexical passes over the workspace source (production code only —
//! `#[cfg(test)]` modules and `tests/` trees are exempt):
//!
//! 1. **Launch registration** — outside `crates/simt` (which defines the
//!    launchers), every `.launch_*` call must use a `_traced` variant
//!    whose first argument is a string literal naming a kernel with a
//!    registered [`Effects`](nulpa_simt::effects::Effects) descriptor.
//!    The untraced convenience wrappers are fine in tests but banned in
//!    production code: a launch the effect system cannot see is a launch
//!    the solver cannot vouch for.
//! 2. **Staging confinement** — `.stage(` / `.flush_shards(` only inside
//!    `crates/simt` (the staging machinery itself) or the kernel module
//!    `crates/core/src/gpu.rs`. Staged writes flushed outside a kernel's
//!    wave loop would bypass the visibility discipline the solver proves.
//! 3. **Determinism** — no wall-clock or entropy sources inside
//!    `crates/simt/src`: the scheduler must be bitwise reproducible, so
//!    `Instant::now` / `SystemTime` / `thread_rng` / `from_entropy` are
//!    banned there (timing belongs to `nulpa-telemetry` on the host
//!    side).
//! 4. **Unsafe audit** — `unsafe` tokens allowed only in files listed in
//!    `check/unsafe_allowlist.toml`, each with a committed reason; stale
//!    entries (allowlisted files with no remaining `unsafe`) are
//!    findings too, so the list can only shrink deliberately. Crate
//!    roots named in the manifest's `[headers]` table must carry their
//!    `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]` headers.

use crate::manifest::{parse_allowlist, Allowlist};
use crate::report::{CheckReport, Finding, FindingKind};
use crate::scan::{has_token, line_of, mask_cfg_test, mask_source};
use nulpa_simt::effects::EffectsRegistry;
use std::fs;
use std::path::{Path, PathBuf};

/// Where the checked manifest lives, relative to the workspace root.
pub const ALLOWLIST_PATH: &str = "check/unsafe_allowlist.toml";

/// Wall-clock / entropy tokens banned inside `crates/simt/src`.
const NONDET_TOKENS: &[&str] = &[
    "Instant",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "rand::random",
];

/// One workspace source file, loaded and masked.
struct SourceFile {
    /// Workspace-relative path, forward slashes.
    rel: String,
    /// Original text (string contents intact).
    raw: String,
    /// Comments and literal bodies blanked; delimiters kept.
    masked: String,
    /// `masked` with `#[cfg(test)]` modules additionally blanked.
    prod: String,
}

/// Run all four lints over the workspace rooted at `root`. Findings are
/// appended to `report`; `report.files_scanned` is bumped per file.
pub fn lint_workspace(root: &Path, registry: &EffectsRegistry, report: &mut CheckReport) {
    let files = collect_sources(root);
    let allowlist = load_allowlist(root, report);
    for file in &files {
        report.files_scanned += 1;
        lint_launch_sites(file, registry, report);
        lint_staging_confinement(file, report);
        lint_determinism(file, report);
        if let Some(list) = &allowlist {
            lint_unsafe_file(file, list, report);
        }
    }
    if let Some(list) = &allowlist {
        lint_stale_entries(&files, list, report);
        lint_headers(root, list, report);
    }
}

fn load_allowlist(root: &Path, report: &mut CheckReport) -> Option<Allowlist> {
    let path = root.join(ALLOWLIST_PATH);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            report.push(Finding {
                kind: FindingKind::UnsafeAudit,
                kernel: ALLOWLIST_PATH.to_string(),
                addr: ALLOWLIST_PATH.to_string(),
                site: "manifest".to_string(),
                witness: None,
                detail: format!("cannot read unsafe allowlist: {e}"),
            });
            return None;
        }
    };
    match parse_allowlist(&text) {
        Ok(list) => Some(list),
        Err(e) => {
            report.push(Finding {
                kind: FindingKind::UnsafeAudit,
                kernel: ALLOWLIST_PATH.to_string(),
                addr: ALLOWLIST_PATH.to_string(),
                site: "manifest".to_string(),
                witness: None,
                detail: format!("malformed unsafe allowlist: {e}"),
            });
            None
        }
    }
}

/// Collect `.rs` files under `src/` and `crates/*/src/`, sorted by
/// relative path for deterministic reports. `tests/`, `benches/` and
/// `vendor/` trees are intentionally out of scope: the invariants are
/// about production kernel and scheduler code.
fn collect_sources(root: &Path) -> Vec<SourceFile> {
    let mut dirs: Vec<PathBuf> = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            let src = e.path().join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    let mut paths = Vec::new();
    for d in dirs {
        walk_rs(&d, &mut paths);
    }
    let mut files: Vec<SourceFile> = paths
        .into_iter()
        .filter_map(|p| {
            let raw = fs::read_to_string(&p).ok()?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            let masked = mask_source(&raw);
            let prod = mask_cfg_test(&masked);
            Some(SourceFile {
                rel,
                raw,
                masked,
                prod,
            })
        })
        .collect();
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    files
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            walk_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

fn in_simt(rel: &str) -> bool {
    rel.starts_with("crates/simt/")
}

fn lint_file_finding(
    kind: FindingKind,
    file: &SourceFile,
    offset: usize,
    site: &str,
    detail: String,
) -> Finding {
    Finding {
        kind,
        kernel: file.rel.clone(),
        addr: format!("{}:{}", file.rel, line_of(&file.prod, offset)),
        site: site.to_string(),
        witness: None,
        detail,
    }
}

/// Lint 1: launch sites must name registered kernels.
fn lint_launch_sites(file: &SourceFile, registry: &EffectsRegistry, report: &mut CheckReport) {
    if in_simt(&file.rel) {
        return; // the launcher definitions themselves
    }
    let b = file.prod.as_bytes();
    let mut from = 0;
    while let Some(pos) = find(b, b".launch_", from) {
        from = pos + 1;
        // Method name runs to the opening paren.
        let name_start = pos + 1;
        let mut i = name_start;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        if i >= b.len() || b[i] != b'(' {
            continue; // a mention, not a call
        }
        let method = &file.prod[name_start..i];
        if !method.ends_with("_traced") {
            report.push(lint_file_finding(
                FindingKind::UnregisteredKernel,
                file,
                pos,
                method,
                format!(
                    "untraced `{method}` launch in production code: use the `_traced` \
                     variant with a registered kernel name so the effect verifier can \
                     see this launch"
                ),
            ));
            continue;
        }
        // First argument must be a string literal; masking keeps the
        // quote delimiters, so read the value out of the original text.
        let mut j = i + 1;
        while j < b.len() && (b[j] as char).is_whitespace() {
            j += 1;
        }
        if j >= b.len() || b[j] != b'"' {
            report.push(lint_file_finding(
                FindingKind::UnregisteredKernel,
                file,
                pos,
                method,
                format!(
                    "`{method}` kernel name is not a string literal: the static \
                     verifier cannot resolve a computed kernel name to an effect \
                     descriptor"
                ),
            ));
            continue;
        }
        let Some(close) = find(b, b"\"", j + 1) else {
            continue;
        };
        let kernel = &file.raw[j + 1..close];
        if registry.lookup(kernel).is_none() {
            report.push(lint_file_finding(
                FindingKind::UnregisteredKernel,
                file,
                pos,
                method,
                format!(
                    "launch of \"{kernel}\" has no registered effect descriptor; \
                     register one in crates/core/src/effects.rs"
                ),
            ));
        }
    }
}

/// Lint 2: staging primitives confined to kernel scope.
fn lint_staging_confinement(file: &SourceFile, report: &mut CheckReport) {
    if in_simt(&file.rel) || file.rel == "crates/core/src/gpu.rs" {
        return;
    }
    for needle in [".stage(", ".flush_shards("] {
        let mut from = 0;
        while let Some(pos) = find(file.prod.as_bytes(), needle.as_bytes(), from) {
            from = pos + 1;
            report.push(lint_file_finding(
                FindingKind::StageOutsideKernel,
                file,
                pos,
                needle.trim_matches(|c| c == '.' || c == '('),
                format!(
                    "`{}` outside kernel scope: staged writes must flush at wave \
                     boundaries inside crates/core/src/gpu.rs or crates/simt",
                    needle.trim_matches(|c| c == '.' || c == '(')
                ),
            ));
        }
    }
}

/// Lint 3: no wall-clock or entropy inside the SIMT scheduler.
fn lint_determinism(file: &SourceFile, report: &mut CheckReport) {
    if !file.rel.starts_with("crates/simt/src") {
        return;
    }
    for token in NONDET_TOKENS {
        if let Some(pos) = find(file.prod.as_bytes(), token.as_bytes(), 0) {
            // `Instant` must be a real token, not e.g. `InstantLike`.
            if token.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && !has_token(&file.prod, token)
            {
                continue;
            }
            report.push(lint_file_finding(
                FindingKind::NondeterminismInSimt,
                file,
                pos,
                "determinism",
                format!(
                    "`{token}` inside crates/simt: the scheduler must be bitwise \
                     reproducible; wall-clock and entropy belong in nulpa-telemetry"
                ),
            ));
        }
    }
}

/// Lint 4a: per-file unsafe audit. Matches the CI policy: the whole file
/// including its test module is audited (unsafe in tests is still
/// unsafe), but comments and string literals are not.
fn lint_unsafe_file(file: &SourceFile, list: &Allowlist, report: &mut CheckReport) {
    if !has_token(&file.masked, "unsafe") || list.allows(&file.rel) {
        return;
    }
    let pos = first_token(&file.masked, "unsafe").unwrap_or(0);
    report.push(Finding {
        kind: FindingKind::UnsafeAudit,
        kernel: file.rel.clone(),
        addr: format!("{}:{}", file.rel, line_of(&file.masked, pos)),
        site: "unsafe-audit".to_string(),
        witness: None,
        detail: format!(
            "`unsafe` in a file not in {ALLOWLIST_PATH}; either remove it or add:\n\
             + [[allow]]\n\
             + path = \"{}\"\n\
             + reason = \"<why this unsafe is sound>\"",
            file.rel
        ),
    });
}

/// Lint 4b: stale allowlist entries — the list may only shrink with the
/// code it covers.
fn lint_stale_entries(files: &[SourceFile], list: &Allowlist, report: &mut CheckReport) {
    for entry in &list.allow {
        let Some(file) = files.iter().find(|f| f.rel == entry.path) else {
            report.push(Finding {
                kind: FindingKind::UnsafeAudit,
                kernel: entry.path.clone(),
                addr: ALLOWLIST_PATH.to_string(),
                site: "unsafe-audit".to_string(),
                witness: None,
                detail: format!(
                    "allowlist entry for a file that does not exist; remove:\n\
                     - path = \"{}\"",
                    entry.path
                ),
            });
            continue;
        };
        if !has_token(&file.masked, "unsafe") {
            report.push(Finding {
                kind: FindingKind::UnsafeAudit,
                kernel: entry.path.clone(),
                addr: ALLOWLIST_PATH.to_string(),
                site: "unsafe-audit".to_string(),
                witness: None,
                detail: format!(
                    "stale allowlist entry: {} no longer contains `unsafe`; remove:\n\
                     - path = \"{}\"\n\
                     - reason = \"{}\"",
                    entry.path, entry.path, entry.reason
                ),
            });
        }
    }
}

/// Lint 4c: crate roots must carry the policy headers the manifest
/// declares for them.
fn lint_headers(root: &Path, list: &Allowlist, report: &mut CheckReport) {
    let checks = [
        (&list.forbid_headers, "#![forbid(unsafe_code)]"),
        (&list.deny_headers, "#![deny(unsafe_code)]"),
    ];
    for (crates, header) in checks {
        for krate in crates.iter() {
            let lib = format!("{krate}/src/lib.rs");
            let text = fs::read_to_string(root.join(&lib)).unwrap_or_default();
            if !mask_source(&text).contains(header) {
                report.push(Finding {
                    kind: FindingKind::UnsafeAudit,
                    kernel: krate.clone(),
                    addr: format!("{lib}:1"),
                    site: "unsafe-audit".to_string(),
                    witness: None,
                    detail: format!("crate root missing `{header}` required by {ALLOWLIST_PATH}"),
                });
            }
        }
    }
}

fn find(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= hay.len() || needle.is_empty() {
        return None;
    }
    hay[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

fn first_token(text: &str, word: &str) -> Option<usize> {
    let b = text.as_bytes();
    let w = word.as_bytes();
    let mut i = 0;
    while let Some(pos) = find(b, w, i) {
        let before_ok = pos == 0 || !(b[pos - 1].is_ascii_alphanumeric() || b[pos - 1] == b'_');
        let after = pos + w.len();
        let after_ok = after >= b.len() || !(b[after].is_ascii_alphanumeric() || b[after] == b'_');
        if before_ok && after_ok {
            return Some(pos);
        }
        i = pos + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CheckReport;
    use std::fs;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nulpa-check-lint-{name}-{}", id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/fake/src")).unwrap();
        fs::create_dir_all(dir.join("check")).unwrap();
        fs::write(
            dir.join("check/unsafe_allowlist.toml"),
            "[headers]\nforbid = []\ndeny = []\n",
        )
        .unwrap();
        dir
    }

    fn id() -> u32 {
        std::process::id()
    }

    fn run(dir: &Path) -> CheckReport {
        let mut rep = CheckReport::new();
        let registry = nulpa_core::shipped_effects();
        lint_workspace(dir, &registry, &mut rep);
        rep
    }

    #[test]
    fn untraced_launch_outside_simt_is_flagged() {
        let dir = scratch("untraced");
        fs::write(
            dir.join("crates/fake/src/lib.rs"),
            "fn go(s: &S) { s.launch_thread_per_item(&[], |_, _| {}, |_| {}); }",
        )
        .unwrap();
        let rep = run(&dir);
        assert_eq!(rep.count_of(FindingKind::UnregisteredKernel), 1);
        let f = rep.of_kind(FindingKind::UnregisteredKernel).next().unwrap();
        assert_eq!(f.kernel, "crates/fake/src/lib.rs");
        assert!(f.addr.ends_with(":1"), "addr was {}", f.addr);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unregistered_kernel_name_is_flagged_registered_is_clean() {
        let dir = scratch("names");
        fs::write(
            dir.join("crates/fake/src/lib.rs"),
            "fn go(s: &S) {\n    s.launch_thread_per_item_traced(\"kernel:mystery\", 0, t, &[], k, w);\n    s.launch_thread_per_item_traced(\"kernel:thread\", 0, t, &[], k, w);\n}",
        )
        .unwrap();
        let rep = run(&dir);
        assert_eq!(rep.count_of(FindingKind::UnregisteredKernel), 1);
        let f = rep.of_kind(FindingKind::UnregisteredKernel).next().unwrap();
        assert!(f.detail.contains("kernel:mystery"));
        assert!(f.addr.ends_with(":2"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn launches_in_test_modules_are_exempt() {
        let dir = scratch("testmod");
        fs::write(
            dir.join("crates/fake/src/lib.rs"),
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t(s: &S) { s.launch_thread_per_item(&[], |_, _| {}, |_| {}); }\n}",
        )
        .unwrap();
        let rep = run(&dir);
        assert_eq!(rep.count_of(FindingKind::UnregisteredKernel), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stage_outside_kernel_scope_is_flagged() {
        let dir = scratch("stage");
        fs::write(
            dir.join("crates/fake/src/lib.rs"),
            "fn sneak(s: &mut StagedWrites) { s.stage(0, 1); }",
        )
        .unwrap();
        let rep = run(&dir);
        assert_eq!(rep.count_of(FindingKind::StageOutsideKernel), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn nondeterminism_lint_only_applies_to_simt() {
        let dir = scratch("nondet");
        fs::create_dir_all(dir.join("crates/simt/src")).unwrap();
        fs::write(
            dir.join("crates/simt/src/lib.rs"),
            "fn t() -> Instant { Instant::now() }",
        )
        .unwrap();
        fs::write(
            dir.join("crates/fake/src/lib.rs"),
            "fn t() -> Instant { Instant::now() }",
        )
        .unwrap();
        let rep = run(&dir);
        assert_eq!(rep.count_of(FindingKind::NondeterminismInSimt), 1);
        let f = rep
            .of_kind(FindingKind::NondeterminismInSimt)
            .next()
            .unwrap();
        assert_eq!(f.kernel, "crates/simt/src/lib.rs");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unlisted_unsafe_is_flagged_with_diff_style_fix() {
        let dir = scratch("unsafe");
        fs::write(
            dir.join("crates/fake/src/lib.rs"),
            "fn f(p: *mut u8) { unsafe { *p = 0; } }",
        )
        .unwrap();
        let rep = run(&dir);
        assert_eq!(rep.count_of(FindingKind::UnsafeAudit), 1);
        let f = rep.of_kind(FindingKind::UnsafeAudit).next().unwrap();
        assert!(f.detail.contains("+ path = \"crates/fake/src/lib.rs\""));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_allowlist_entry_is_flagged() {
        let dir = scratch("stale");
        fs::write(
            dir.join("check/unsafe_allowlist.toml"),
            "[[allow]]\npath = \"crates/fake/src/lib.rs\"\nreason = \"was needed\"\n\n[headers]\nforbid = []\ndeny = []\n",
        )
        .unwrap();
        fs::write(dir.join("crates/fake/src/lib.rs"), "fn all_safe() {}").unwrap();
        let rep = run(&dir);
        assert_eq!(rep.count_of(FindingKind::UnsafeAudit), 1);
        let f = rep.of_kind(FindingKind::UnsafeAudit).next().unwrap();
        assert!(f.detail.contains("stale allowlist entry"));
        assert!(f.detail.contains("- path = \"crates/fake/src/lib.rs\""));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsafe_in_comments_and_strings_is_ignored() {
        let dir = scratch("masked");
        fs::write(
            dir.join("crates/fake/src/lib.rs"),
            "// unsafe is discussed here\nfn f() -> &'static str { \"unsafe\" }",
        )
        .unwrap();
        let rep = run(&dir);
        assert_eq!(rep.count_of(FindingKind::UnsafeAudit), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_forbid_header_is_flagged() {
        let dir = scratch("headers");
        fs::write(
            dir.join("check/unsafe_allowlist.toml"),
            "[headers]\nforbid = [\"crates/fake\"]\ndeny = []\n",
        )
        .unwrap();
        fs::write(dir.join("crates/fake/src/lib.rs"), "fn no_header() {}").unwrap();
        let rep = run(&dir);
        assert_eq!(rep.count_of(FindingKind::UnsafeAudit), 1);
        let f = rep.of_kind(FindingKind::UnsafeAudit).next().unwrap();
        assert!(f.detail.contains("#![forbid(unsafe_code)]"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_itself_a_finding() {
        let dir = scratch("nomanifest");
        fs::remove_file(dir.join("check/unsafe_allowlist.toml")).unwrap();
        fs::write(dir.join("crates/fake/src/lib.rs"), "fn f() {}").unwrap();
        let rep = run(&dir);
        assert!(rep.count_of(FindingKind::UnsafeAudit) >= 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_fake_workspace_is_clean() {
        let dir = scratch("clean");
        fs::write(
            dir.join("crates/fake/src/lib.rs"),
            "pub fn fine() { helper(); }\nfn helper() {}",
        )
        .unwrap();
        let rep = run(&dir);
        assert!(rep.is_clean(), "unexpected findings:\n{}", rep.render());
        assert!(rep.files_scanned >= 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
