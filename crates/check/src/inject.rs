//! Fault-injection descriptors — deliberately broken kernels.
//!
//! Each injected descriptor encodes one violation class from the
//! DESIGN.md invariant catalogue, exactly as a buggy kernel would have
//! to declare itself (an *honest* declaration of dishonest code). The
//! test suite and `nulpa check --inject` verify that the solver catches
//! every one with exact (kernel, address-expression, lane-pair)
//! attribution — the static analogue of sancheck's fault-injection
//! harness, and the proof that a clean report is a non-vacuous claim.

use crate::report::FindingKind;
use nulpa_simt::effects::{
    AccessEffect, AccessKind, AddrExpr, BarrierSite, Effects, EffectsRegistry, IndexExpr,
    KernelFlavor, LaneOrder, Pred, ProbeBound, Region, StagingClass, Visibility,
};

/// One injected fault: the doctored descriptor plus the finding kind the
/// solver must report for it.
pub struct InjectedFault {
    /// The deliberately broken descriptor.
    pub effects: Effects,
    /// The violation class it encodes.
    pub expected: FindingKind,
    /// What the fault models, for the report.
    pub scenario: &'static str,
}

fn base(name: &'static str) -> Effects {
    Effects {
        kernel: name,
        flavor: KernelFlavor::ThreadPerItem,
        order: LaneOrder::Lockstep,
        staging: StagingClass::Staged,
        distinct_items: true,
        accesses: Vec::new(),
        barriers: Vec::new(),
        probes: ProbeBound::None,
    }
}

/// The six injected violation classes.
pub fn injected_faults() -> Vec<InjectedFault> {
    vec![
        // 1. Lane race: a kernel that pushes its label onto every
        // neighbour (classic "gossip" LPA variant) — two lanes sharing a
        // neighbour stage differing values to one cell.
        InjectedFault {
            effects: Effects {
                accesses: vec![AccessEffect {
                    site: "gossip write",
                    addr: AddrExpr::new(Region::Labels, IndexExpr::Neighbor),
                    kind: AccessKind::Write {
                        vis: Visibility::Staged,
                        idempotent: false,
                    },
                }],
                ..base("inject:lane-race")
            },
            expected: FindingKind::LaneWriteRace,
            scenario: "push-style label write to neighbours without atomics",
        },
        // 2. Divergent barrier: a block kernel that synchronises inside a
        // per-lane early-out (e.g. `if targets[k] == v { return; }`
        // before a barrier).
        InjectedFault {
            effects: Effects {
                flavor: KernelFlavor::BlockPerItem,
                barriers: vec![BarrierSite {
                    site: "post-scan",
                    pred: Pred::LaneDivergent,
                }],
                ..base("inject:divergent-barrier")
            },
            expected: FindingKind::DivergentBarrier,
            scenario: "barrier under a per-lane self-loop skip",
        },
        // 3. Unstaged same-wave read: labels written through immediately
        // (asynchronous LPA on lockstep hardware) while neighbours are
        // read in the same wave — the community-swap bug class itself.
        InjectedFault {
            effects: Effects {
                staging: StagingClass::Immediate,
                accesses: vec![
                    AccessEffect {
                        site: "label write-through",
                        addr: AddrExpr::new(Region::Labels, IndexExpr::OwnVertex),
                        kind: AccessKind::Write {
                            vis: Visibility::Immediate,
                            idempotent: false,
                        },
                    },
                    AccessEffect {
                        site: "neighbour label read",
                        addr: AddrExpr::new(Region::Labels, IndexExpr::Neighbor),
                        kind: AccessKind::Read,
                    },
                ],
                ..base("inject:unstaged-read")
            },
            expected: FindingKind::UnstagedSameWaveRead,
            scenario: "write-through labels read by same-wave neighbours",
        },
        // 4. OOB stride: a table region declared with extent scale 3 —
        // e.g. reserving 3 slots per edge in the 2|E| buffer.
        InjectedFault {
            effects: Effects {
                accesses: vec![AccessEffect {
                    site: "oversized table scan",
                    addr: AddrExpr::new(
                        Region::Keys,
                        IndexExpr::CsrInterval {
                            start_scale: 2,
                            extent_scale: 3,
                        },
                    ),
                    kind: AccessKind::Read,
                }],
                probes: ProbeBound::Bounded {
                    budget: nulpa_hashtab::MAX_RETRIES,
                    fallback_linear: true,
                },
                ..base("inject:oob-stride")
            },
            expected: FindingKind::RegionOob,
            scenario: "3 slots per edge carved from the 2|E| buffer",
        },
        // 5. Budget overrun: a probe loop with no declared termination
        // bound (Algorithm 2 without the retry cap).
        InjectedFault {
            effects: Effects {
                accesses: vec![AccessEffect {
                    site: "unbounded probe insert",
                    addr: AddrExpr::new(
                        Region::Keys,
                        IndexExpr::CsrInterval {
                            start_scale: 2,
                            extent_scale: 2,
                        },
                    ),
                    kind: AccessKind::Write {
                        vis: Visibility::Immediate,
                        idempotent: false,
                    },
                }],
                probes: ProbeBound::Unbounded,
                ..base("inject:probe-overrun")
            },
            expected: FindingKind::ProbeBudgetOverrun,
            scenario: "probe loop with the MAX_RETRIES cap removed",
        },
        // 6. Immediate write in a staged kernel: the main kernel marking
        // its label moved via a plain store instead of staging it.
        InjectedFault {
            effects: Effects {
                accesses: vec![AccessEffect {
                    site: "label store",
                    addr: AddrExpr::new(Region::Labels, IndexExpr::OwnVertex),
                    kind: AccessKind::Write {
                        vis: Visibility::Immediate,
                        idempotent: false,
                    },
                }],
                ..base("inject:immediate-write")
            },
            expected: FindingKind::ImmediateWriteEscape,
            scenario: "staged-class kernel storing labels directly",
        },
    ]
}

/// Register every injected descriptor into `registry` (alongside the
/// shipped ones) — `nulpa check --inject` uses this to demonstrate the
/// gate failing.
pub fn register_injected(registry: &mut EffectsRegistry) {
    for f in injected_faults() {
        registry.register(f.effects);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::verify;
    use nulpa_simt::effects::EffectsRegistry;

    #[test]
    fn at_least_six_violation_classes() {
        let faults = injected_faults();
        assert!(faults.len() >= 6);
        // ... and they cover six *distinct* finding kinds.
        let mut kinds: Vec<_> = faults.iter().map(|f| f.expected as u8).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert!(kinds.len() >= 6, "injections must cover distinct classes");
    }

    #[test]
    fn each_fault_caught_with_exact_attribution() {
        for fault in injected_faults() {
            let kernel = fault.effects.kernel;
            let mut r = EffectsRegistry::new();
            r.register(fault.effects);
            let rep = verify(&r);
            assert!(
                rep.count_of(fault.expected) > 0,
                "{kernel}: expected a {} finding, got:\n{}",
                fault.expected.name(),
                rep.render()
            );
            // Exact attribution: the finding names the injected kernel
            // and carries a rendered address expression.
            let f = rep.of_kind(fault.expected).next().expect("counted above");
            assert_eq!(f.kernel, kernel, "finding attributed to wrong kernel");
            assert!(!f.addr.is_empty(), "{kernel}: finding lacks an address");
            // Overlap-class findings must carry a concrete lane pair.
            if matches!(
                fault.expected,
                FindingKind::LaneWriteRace | FindingKind::UnstagedSameWaveRead
            ) {
                let w = f.witness.as_ref().expect("overlap finding needs lanes");
                assert_ne!(w.a, w.b, "witness lanes must be distinct");
                assert!(!w.assignment.is_empty());
            }
        }
    }

    #[test]
    fn faults_are_isolated_to_their_own_class() {
        // Each injected kernel triggers its expected class and no finding
        // attributed to a *different* injected kernel — attribution never
        // bleeds between descriptors.
        let mut r = EffectsRegistry::new();
        register_injected(&mut r);
        let rep = verify(&r);
        for fault in injected_faults() {
            let mine: Vec<_> = rep
                .findings
                .iter()
                .filter(|f| f.kernel == fault.effects.kernel)
                .collect();
            assert!(
                mine.iter().any(|f| f.kind == fault.expected),
                "{} lost its {} finding in the combined run",
                fault.effects.kernel,
                fault.expected.name()
            );
        }
    }
}
