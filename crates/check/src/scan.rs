//! Lexical source masking for the workspace linter.
//!
//! The build environment is offline, so the Layer-2 pass cannot use a
//! full Rust parser (`syn`); instead it works on a *masked* copy of each
//! source file in which comment bodies and string/char-literal contents
//! are replaced by spaces, byte for byte. Offsets and line numbers are
//! preserved exactly, string *delimiters* are kept (so a lint can locate
//! a literal in the masked text and read its value from the original),
//! and `#[cfg(test)]` modules can additionally be blanked so test-only
//! code is exempt from production lints. This is deliberately a lexer,
//! not a parser: every lint it feeds matches on tokens that are
//! unambiguous at the lexical level (`.launch_`, `.stage(`, `unsafe`).

/// Replace comment bodies and string/char contents with spaces,
/// preserving length, newlines, and the quote delimiters themselves.
pub fn mask_source(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // Line comment: mask to end of line.
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment, possibly nested.
                let mut depth = 1;
                out.push(b' ');
                out.push(b' ');
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                // Raw (byte) string: r"...", r#"..."#, br##"..."##.
                let mut j = i;
                while b[j] != b'r' {
                    out.push(b[j]);
                    j += 1;
                }
                out.push(b'r');
                j += 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    out.push(b'#');
                    hashes += 1;
                    j += 1;
                }
                out.push(b'"');
                j += 1; // opening quote
                loop {
                    if j >= b.len() {
                        break;
                    }
                    if b[j] == b'"' && closes_raw(b, j, hashes) {
                        out.push(b'"');
                        out.extend(std::iter::repeat_n(b'#', hashes));
                        j += 1 + hashes;
                        break;
                    }
                    out.push(if b[j] == b'\n' { b'\n' } else { b' ' });
                    j += 1;
                }
                i = j;
            }
            b'"' => {
                // Ordinary string (a preceding `b` was already copied —
                // harmless, it is not an ident boundary for our lints).
                out.push(b'"');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                        continue;
                    }
                    if b[i] == b'"' {
                        out.push(b'"');
                        i += 1;
                        break;
                    }
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime. `'\..'` or `'x'` is a char
                // literal; `'ident` (no closing quote right after one
                // char) is a lifetime and copied verbatim.
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    out.push(b'\'');
                    out.push(b' ');
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        out.push(b' ');
                        i += 1;
                    }
                    if i < b.len() {
                        out.push(b'\'');
                        i += 1;
                    }
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    out.push(b'\'');
                    out.push(b' ');
                    out.push(b'\'');
                    i += 3;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    // Masking only ever replaces bytes with ASCII spaces at UTF-8
    // boundary positions or copies them through, but a multi-byte char
    // inside a masked span is replaced byte-per-byte with spaces, which
    // is still valid UTF-8.
    String::from_utf8(out).expect("masking preserves UTF-8")
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // r" r#" br" br#" rb is not a thing; b" is handled by the string arm.
    let (mut j, first) = (i, b[i]);
    if first == b'b' {
        j += 1;
        if j >= b.len() || b[j] != b'r' {
            return false;
        }
    }
    j += 1; // past 'r'
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"' && {
        // Reject identifiers ending in r, like `var"` (not valid Rust
        // anyway) — require a non-ident char before i.
        i == 0 || !is_ident(b[i - 1])
    }
}

fn closes_raw(b: &[u8], j: usize, hashes: usize) -> bool {
    (j + 1..j + 1 + hashes).all(|k| k < b.len() && b[k] == b'#')
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Blank out every `#[cfg(test)] mod … { … }` block in already-masked
/// text (braces inside strings/comments are gone, so plain brace
/// matching is exact). Returns text of identical length.
pub fn mask_cfg_test(masked: &str) -> String {
    let b = masked.as_bytes();
    let mut out = masked.as_bytes().to_vec();
    let needle = b"#[cfg(test)]";
    let mut i = 0;
    while let Some(pos) = find_from(b, needle, i) {
        i = pos + needle.len();
        // Skip whitespace and further attributes to the item keyword.
        let mut j = i;
        loop {
            while j < b.len() && (b[j] as char).is_whitespace() {
                j += 1;
            }
            if j < b.len() && b[j] == b'#' {
                // another attribute: skip to its closing ']'
                while j < b.len() && b[j] != b']' {
                    j += 1;
                }
                j += 1;
            } else {
                break;
            }
        }
        // Only blank module bodies; a #[cfg(test)] on a single fn or use
        // is rare here and merely makes the lint conservative.
        let rest = &b[j..];
        if !(rest.starts_with(b"mod ") || rest.starts_with(b"pub mod ")) {
            continue;
        }
        // Find the opening brace, then match it.
        let Some(open_rel) = rest.iter().position(|&c| c == b'{' || c == b';') else {
            continue;
        };
        if rest[open_rel] == b';' {
            continue; // out-of-line test module: its file is still linted
        }
        let open = j + open_rel;
        let mut depth = 0usize;
        let mut k = open;
        while k < b.len() {
            match b[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        for c in out
            .iter_mut()
            .take(k.min(b.len().saturating_sub(1)) + 1)
            .skip(pos)
        {
            if *c != b'\n' {
                *c = b' ';
            }
        }
        i = k;
    }
    String::from_utf8(out).expect("blanking preserves UTF-8")
}

fn find_from(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    hay[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// 1-indexed line number of a byte offset.
pub fn line_of(text: &str, offset: usize) -> usize {
    text.as_bytes()[..offset.min(text.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

/// Does `text` contain `word` as a whole token (not an identifier
/// substring)?
pub fn has_token(text: &str, word: &str) -> bool {
    let b = text.as_bytes();
    let w = word.as_bytes();
    let mut i = 0;
    while let Some(pos) = find_from(b, w, i) {
        let before_ok = pos == 0 || !is_ident(b[pos - 1]);
        let after = pos + w.len();
        let after_ok = after >= b.len() || !is_ident(b[after]);
        if before_ok && after_ok {
            return true;
        }
        i = pos + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let a = \"unsafe\"; // unsafe comment\nlet b = 1; /* unsafe */ call();";
        let m = mask_source(src);
        assert_eq!(m.len(), src.len());
        assert!(!has_token(&m, "unsafe"));
        assert!(m.contains("let a = \""));
        assert!(m.contains("call()"));
    }

    #[test]
    fn raw_strings_are_blanked_delimiters_kept() {
        let src = r###"let s = r#"launch_thread_per_item"#; x();"###;
        let m = mask_source(src);
        assert_eq!(m.len(), src.len());
        assert!(!m.contains("launch_thread_per_item"));
        assert!(m.contains("x();"));
    }

    #[test]
    fn char_literals_masked_lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) { let c = '{'; let d = '\\n'; g(); }";
        let m = mask_source(src);
        assert_eq!(m.len(), src.len());
        assert!(m.contains("<'a>"));
        assert!(m.contains("&'a str"));
        // the only remaining `{` is the fn body's — the literal is masked
        assert_eq!(m.matches('{').count(), 1);
        assert!(m.contains("g();"));
    }

    #[test]
    fn cfg_test_modules_are_blanked() {
        let src = "fn prod() { stage(); }\n#[cfg(test)]\nmod tests {\n    fn t() { s.stage(0, 1); }\n}\nfn prod2() {}";
        let masked = mask_cfg_test(&mask_source(src));
        assert!(masked.contains("fn prod()"));
        assert!(masked.contains("fn prod2()"));
        assert!(!masked.contains(".stage(0, 1)"));
        assert_eq!(masked.len(), src.len());
    }

    #[test]
    fn nested_braces_in_test_mod_are_matched() {
        let src = "#[cfg(test)]\nmod t { fn a() { if x { y(); } } }\nfn keep() {}";
        let masked = mask_cfg_test(&mask_source(src));
        assert!(masked.contains("fn keep()"));
        assert!(!masked.contains("y();"));
    }

    #[test]
    fn line_numbers_are_stable_under_masking() {
        let src = "a\n/* c\nc */\nb \"s\ns\" x\ntarget";
        let m = mask_source(src);
        let pos = m.find("target").unwrap();
        assert_eq!(line_of(&m, pos), 6);
        assert_eq!(line_of(src, src.find("target").unwrap()), 6);
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(has_token("unsafe {", "unsafe"));
        assert!(!has_token("my_unsafe_fn()", "unsafe"));
        assert!(!has_token("unsafeish", "unsafe"));
    }
}
