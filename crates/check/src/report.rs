//! Finding records and the structured report.
//!
//! The schema deliberately mirrors `nulpa-sancheck`'s
//! `SancheckReport` — kind enum with stable kebab-case names, a
//! per-kind `counts` array indexed by discriminant, `is_clean`,
//! `render`, `to_json` — so downstream tooling (CI artifact diffing,
//! the observability exporters) treats the static and dynamic gates
//! uniformly. Where sancheck attributes a hazard to a concrete
//! `(wave, block, warp, lane)`, a static finding attributes to a
//! *symbolic* witness: the kernel, the rendered address expression,
//! and a lane pair with a concrete item assignment that realises the
//! overlap.

use nulpa_obs::json;

/// The classes of finding the static checker reports. The discriminant
/// indexes [`CheckReport::counts`]. Kinds 0–5 come from the Layer-1
/// effect solver, 6–9 from the Layer-2 workspace linter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FindingKind {
    /// Two lanes of one wave may write the same cell through plain
    /// (non-atomic) stores with differing values — the static form of
    /// sancheck's `wave-write-race`.
    LaneWriteRace = 0,
    /// An immediate plain write is reachable by a same-wave read of
    /// another lane with no intervening flush/wave boundary — the
    /// static form of `write-through-race`.
    UnstagedSameWaveRead = 1,
    /// A `BlockCtx::barrier()` site is dominated by a lane-divergent
    /// predicate (or declared outside block scope) — the static form of
    /// `barrier-divergence`.
    DivergentBarrier = 2,
    /// A probe loop's declared bound is missing, unbounded, or
    /// inconsistent with the budget the table code enforces — the
    /// static form of `probe-overrun`.
    ProbeBudgetOverrun = 3,
    /// An immediate write escapes its sanctioned scope: a staged-class
    /// kernel writes shared state immediately, or an immediate-class
    /// kernel's plain write is not confined to lane-disjoint cells.
    ImmediateWriteEscape = 4,
    /// An address expression leaves its declared region (stride/extent
    /// exceeds the CSR carve) or indexes a region with the wrong index
    /// space — the static form of `out-of-bounds`.
    RegionOob = 5,
    /// A `launch_*` call site references a kernel with no registered
    /// `Effects` descriptor (or a non-literal name the checker cannot
    /// resolve).
    UnregisteredKernel = 6,
    /// `.stage(` / `.flush_shards(` used outside kernel scope (the SIMT
    /// simulator and the GPU kernel module).
    StageOutsideKernel = 7,
    /// Wall-clock or randomness primitives inside `crates/simt` — the
    /// simulator must stay deterministic and replayable.
    NondeterminismInSimt = 8,
    /// Unsafe-audit violation: `unsafe` outside the committed
    /// allowlist, a stale allowlist entry, or a missing
    /// forbid/deny(unsafe_code) crate header.
    UnsafeAudit = 9,
}

/// Number of finding kinds (length of [`CheckReport::counts`]).
pub const KIND_COUNT: usize = 10;

impl FindingKind {
    /// All kinds, in discriminant order.
    pub const ALL: [FindingKind; KIND_COUNT] = [
        FindingKind::LaneWriteRace,
        FindingKind::UnstagedSameWaveRead,
        FindingKind::DivergentBarrier,
        FindingKind::ProbeBudgetOverrun,
        FindingKind::ImmediateWriteEscape,
        FindingKind::RegionOob,
        FindingKind::UnregisteredKernel,
        FindingKind::StageOutsideKernel,
        FindingKind::NondeterminismInSimt,
        FindingKind::UnsafeAudit,
    ];

    /// Stable kebab-case name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::LaneWriteRace => "lane-write-race",
            FindingKind::UnstagedSameWaveRead => "unstaged-same-wave-read",
            FindingKind::DivergentBarrier => "divergent-barrier",
            FindingKind::ProbeBudgetOverrun => "probe-budget-overrun",
            FindingKind::ImmediateWriteEscape => "immediate-write-escape",
            FindingKind::RegionOob => "region-oob",
            FindingKind::UnregisteredKernel => "unregistered-kernel",
            FindingKind::StageOutsideKernel => "stage-outside-kernel",
            FindingKind::NondeterminismInSimt => "nondeterminism-in-simt",
            FindingKind::UnsafeAudit => "unsafe-audit",
        }
    }
}

/// Concrete lane-pair witness realising a symbolic overlap: two lane
/// (item) indices plus the item/neighbour assignment under which their
/// address sets intersect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LanePair {
    /// First lane (execution-unit) index.
    pub a: usize,
    /// Second lane index.
    pub b: usize,
    /// The assignment that realises the overlap, e.g.
    /// `"u=0, u′=1 sharing neighbour j=2"`.
    pub assignment: String,
}

impl LanePair {
    /// Witness over the canonical first two lanes.
    pub fn new(assignment: impl Into<String>) -> Self {
        LanePair {
            a: 0,
            b: 1,
            assignment: assignment.into(),
        }
    }
}

/// One finding, with exact attribution.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Finding class.
    pub kind: FindingKind,
    /// Kernel the finding is about — or, for lint findings, the
    /// repo-relative source path.
    pub kernel: String,
    /// Rendered address expression (solver findings) or `file:line`
    /// location (lint findings).
    pub addr: String,
    /// The declared effect site(s) involved, `"a ↔ b"` for pairs.
    pub site: String,
    /// Lane-pair witness, when the finding is an overlap.
    pub witness: Option<LanePair>,
    /// Human-readable description.
    pub detail: String,
}

impl Finding {
    /// One-line rendering with attribution.
    pub fn render(&self) -> String {
        let mut s = format!(
            "[{}] {} addr={} site={}",
            self.kind.name(),
            self.kernel,
            self.addr,
            self.site
        );
        if let Some(w) = &self.witness {
            s.push_str(&format!(" lanes=({},{}) [{}]", w.a, w.b, w.assignment));
        }
        s.push_str(": ");
        s.push_str(&self.detail);
        s
    }

    /// JSON object rendering.
    pub fn to_json(&self) -> String {
        let witness = match &self.witness {
            None => "null".to_string(),
            Some(w) => format!(
                "{{\"lane_a\":{},\"lane_b\":{},\"assignment\":{}}}",
                w.a,
                w.b,
                json::escape(&w.assignment)
            ),
        };
        format!(
            "{{\"kind\":{},\"kernel\":{},\"addr\":{},\"site\":{},\"witness\":{},\"detail\":{}}}",
            json::escape(self.kind.name()),
            json::escape(&self.kernel),
            json::escape(&self.addr),
            json::escape(&self.site),
            witness,
            json::escape(&self.detail)
        )
    }
}

/// Structured result of one `nulpa check` run.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Detailed finding records.
    pub findings: Vec<Finding>,
    /// Occurrences per kind, indexed by [`FindingKind`] discriminant.
    pub counts: [u64; KIND_COUNT],
    /// Kernels with a registered effects descriptor that were verified.
    pub kernels_checked: usize,
    /// Access pairs / declaration facts the solver discharged.
    pub facts_checked: u64,
    /// Source files scanned by the workspace linter.
    pub files_scanned: usize,
}

impl CheckReport {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a finding, keeping the counts in sync.
    pub fn push(&mut self, f: Finding) {
        self.counts[f.kind as usize] += 1;
        self.findings.push(f);
    }

    /// Total findings across all kinds.
    pub fn total_findings(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `true` when no finding of any kind was reported.
    pub fn is_clean(&self) -> bool {
        self.total_findings() == 0
    }

    /// Occurrences of one kind.
    pub fn count_of(&self, kind: FindingKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Findings of one kind, in report order.
    pub fn of_kind(&self, kind: FindingKind) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.kind == kind)
    }

    /// Merge another report into this one (solver + linter halves).
    pub fn merge(&mut self, other: CheckReport) {
        for f in other.findings {
            self.push(f);
        }
        self.kernels_checked += other.kernels_checked;
        self.facts_checked += other.facts_checked;
        self.files_scanned += other.files_scanned;
    }

    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        if self.is_clean() {
            s.push_str(&format!(
                "check: clean ({} kernels verified, {} facts discharged, {} files linted)\n",
                self.kernels_checked, self.facts_checked, self.files_scanned
            ));
            return s;
        }
        let by_kind: Vec<String> = FindingKind::ALL
            .iter()
            .filter(|&&k| self.count_of(k) > 0)
            .map(|&k| format!("{}: {}", k.name(), self.count_of(k)))
            .collect();
        s.push_str(&format!(
            "check: {} findings ({}), {} kernels verified, {} files linted\n",
            self.total_findings(),
            by_kind.join(", "),
            self.kernels_checked,
            self.files_scanned
        ));
        for f in &self.findings {
            s.push_str("  ");
            s.push_str(&f.render());
            s.push('\n');
        }
        s
    }

    /// JSON object rendering (for `nulpa check --json`).
    pub fn to_json(&self) -> String {
        let counts: Vec<String> = FindingKind::ALL
            .iter()
            .filter(|&&k| self.count_of(k) > 0)
            .map(|&k| format!("{}:{}", json::escape(k.name()), self.count_of(k)))
            .collect();
        let findings: Vec<String> = self.findings.iter().map(Finding::to_json).collect();
        format!(
            "{{\"total_findings\":{},\"counts\":{{{}}},\"findings\":[{}],\"kernels_checked\":{},\"facts_checked\":{},\"files_scanned\":{}}}",
            self.total_findings(),
            counts.join(","),
            findings.join(","),
            self.kernels_checked,
            self.facts_checked,
            self.files_scanned
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_obs::json::Json;

    fn finding() -> Finding {
        Finding {
            kind: FindingKind::LaneWriteRace,
            kernel: "inject:lane-race".to_string(),
            addr: "labels[j], j ∈ N(v)".to_string(),
            site: "gossip write ↔ gossip write".to_string(),
            witness: Some(LanePair::new("u=0, u′=1 sharing neighbour j=2")),
            detail: "two lanes may stage differing values to one cell".to_string(),
        }
    }

    #[test]
    fn render_includes_attribution() {
        let r = finding().render();
        assert!(r.contains("lane-write-race"));
        assert!(r.contains("inject:lane-race"));
        assert!(r.contains("labels[j]"));
        assert!(r.contains("lanes=(0,1)"));
        assert!(r.contains("j=2"));
    }

    #[test]
    fn json_is_parseable_and_counts_match() {
        let mut rep = CheckReport::default();
        rep.push(finding());
        rep.kernels_checked = 3;
        rep.facts_checked = 42;
        let parsed = json::parse(&rep.to_json()).expect("valid json");
        assert_eq!(parsed.get("total_findings").and_then(Json::as_u64), Some(1));
        assert_eq!(
            parsed
                .get("findings")
                .and_then(Json::as_arr)
                .map(<[_]>::len),
            Some(1)
        );
        assert_eq!(
            parsed.get("kernels_checked").and_then(Json::as_u64),
            Some(3)
        );
        assert!(!rep.is_clean());
        assert_eq!(rep.count_of(FindingKind::LaneWriteRace), 1);
    }

    #[test]
    fn clean_report_renders_clean() {
        let rep = CheckReport::default();
        assert!(rep.is_clean());
        assert!(rep.render().contains("clean"));
    }

    #[test]
    fn merge_combines_counts_and_totals() {
        let mut a = CheckReport::default();
        a.push(finding());
        a.kernels_checked = 3;
        let mut b = CheckReport::default();
        b.push(Finding {
            kind: FindingKind::UnsafeAudit,
            ..finding()
        });
        b.files_scanned = 10;
        a.merge(b);
        assert_eq!(a.total_findings(), 2);
        assert_eq!(a.count_of(FindingKind::UnsafeAudit), 1);
        assert_eq!(a.files_scanned, 10);
        assert_eq!(a.kernels_checked, 3);
    }
}
