//! The checked unsafe-audit manifest (`check/unsafe_allowlist.toml`).
//!
//! The CI script used to carry the unsafe-code allowlist as an inline
//! grep; promoting it to a committed manifest makes the policy
//! reviewable in diffs and lets `nulpa check` report *stale* entries
//! (allowlisted files that no longer contain `unsafe`) as findings, so
//! the list can only shrink deliberately. The parser below handles the
//! TOML subset the manifest uses — `[[allow]]` tables with string
//! values and a `[headers]` table with string arrays — because the
//! build environment is offline and the workspace vendors no TOML
//! crate.

use std::fmt::Write as _;

/// One allowlisted file: a workspace-relative path plus the reason its
/// `unsafe` blocks are accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Why this file is allowed to contain `unsafe`.
    pub reason: String,
}

/// Parsed `check/unsafe_allowlist.toml`.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// Files permitted to contain `unsafe` code.
    pub allow: Vec<AllowEntry>,
    /// Crate roots that must carry `#![forbid(unsafe_code)]`.
    pub forbid_headers: Vec<String>,
    /// Crate roots that must carry `#![deny(unsafe_code)]`.
    pub deny_headers: Vec<String>,
}

impl Allowlist {
    /// Is `path` (workspace-relative, forward slashes) allowlisted?
    pub fn allows(&self, path: &str) -> bool {
        self.allow.iter().any(|e| e.path == path)
    }

    /// Render the manifest back to canonical TOML — used to show the
    /// *expected* manifest in diff-style failure messages.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for e in &self.allow {
            let _ = writeln!(s, "[[allow]]");
            let _ = writeln!(s, "path = \"{}\"", e.path);
            let _ = writeln!(s, "reason = \"{}\"", e.reason);
            let _ = writeln!(s);
        }
        let _ = writeln!(s, "[headers]");
        let _ = writeln!(s, "forbid = {}", render_arr(&self.forbid_headers));
        let _ = writeln!(s, "deny = {}", render_arr(&self.deny_headers));
        s
    }
}

fn render_arr(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|i| format!("\"{i}\"")).collect();
    format!("[{}]", quoted.join(", "))
}

/// Parse the manifest. Returns `Err` with a line-attributed message on
/// anything outside the supported subset, so a malformed manifest fails
/// the check loudly instead of silently allowing everything.
pub fn parse_allowlist(text: &str) -> Result<Allowlist, String> {
    let mut out = Allowlist::default();
    #[derive(PartialEq)]
    enum Section {
        None,
        Allow,
        Headers,
    }
    let mut section = Section::None;
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        if line == "[[allow]]" {
            out.allow.push(AllowEntry {
                path: String::new(),
                reason: String::new(),
            });
            section = Section::Allow;
            continue;
        }
        if line == "[headers]" {
            section = Section::Headers;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {lineno}: unknown table {line}"));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "line {lineno}: expected `key = value`, got {line:?}"
            ));
        };
        let (key, value) = (key.trim(), value.trim());
        match section {
            Section::Allow => {
                let entry = out.allow.last_mut().expect("section implies an entry");
                let v = parse_str(value)
                    .ok_or_else(|| format!("line {lineno}: expected a quoted string"))?;
                match key {
                    "path" => entry.path = v,
                    "reason" => entry.reason = v,
                    _ => return Err(format!("line {lineno}: unknown key {key:?} in [[allow]]")),
                }
            }
            Section::Headers => {
                // Array value, possibly spanning multiple lines.
                let mut buf = value.to_string();
                while !buf.trim_end().ends_with(']') {
                    let Some((_, next)) = lines.next() else {
                        return Err(format!("line {lineno}: unterminated array for {key:?}"));
                    };
                    buf.push(' ');
                    buf.push_str(strip_comment(next).trim());
                }
                let items = parse_arr(&buf)
                    .ok_or_else(|| format!("line {lineno}: expected an array of strings"))?;
                match key {
                    "forbid" => out.forbid_headers = items,
                    "deny" => out.deny_headers = items,
                    _ => return Err(format!("line {lineno}: unknown key {key:?} in [headers]")),
                }
            }
            Section::None => {
                return Err(format!("line {lineno}: key outside any table"));
            }
        }
    }
    for (i, e) in out.allow.iter().enumerate() {
        if e.path.is_empty() {
            return Err(format!("[[allow]] entry #{} missing `path`", i + 1));
        }
        if e.reason.is_empty() {
            return Err(format!("allow entry for {:?} missing `reason`", e.path));
        }
    }
    Ok(out)
}

fn strip_comment(line: &str) -> &str {
    // The manifest subset never puts `#` inside strings, so a plain
    // split is exact for the files we own; a `#` inside a quoted value
    // would be a parse error downstream, not silent truncation.
    match line.find('#') {
        Some(pos)
            if !line[..pos].contains('"') || line[..pos].matches('"').count().is_multiple_of(2) =>
        {
            &line[..pos]
        }
        _ => line,
    }
}

fn parse_str(v: &str) -> Option<String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Some(v[1..v.len() - 1].to_string())
    } else {
        None
    }
}

fn parse_arr(v: &str) -> Option<Vec<String>> {
    let v = v.trim();
    let inner = v.strip_prefix('[')?.strip_suffix(']')?;
    let mut items = Vec::new();
    for piece in inner.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue; // trailing comma
        }
        items.push(parse_str(piece)?);
    }
    Some(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# unsafe audit manifest
[[allow]]
path = "crates/core/src/native.rs"   # SIMD intrinsics
reason = "portable-SIMD gather path"

[[allow]]
path = "crates/telemetry/src/alloc.rs"
reason = "global allocator hooks"

[headers]
forbid = ["crates/graph", "crates/simt"]
deny = [
    "crates/core",
    "crates/telemetry",
]
"#;

    #[test]
    fn parses_sample() {
        let a = parse_allowlist(SAMPLE).unwrap();
        assert_eq!(a.allow.len(), 2);
        assert_eq!(a.allow[0].path, "crates/core/src/native.rs");
        assert_eq!(a.allow[0].reason, "portable-SIMD gather path");
        assert!(a.allows("crates/telemetry/src/alloc.rs"));
        assert!(!a.allows("crates/core/src/gpu.rs"));
        assert_eq!(a.forbid_headers, vec!["crates/graph", "crates/simt"]);
        assert_eq!(a.deny_headers, vec!["crates/core", "crates/telemetry"]);
    }

    #[test]
    fn roundtrips_through_render() {
        let a = parse_allowlist(SAMPLE).unwrap();
        let b = parse_allowlist(&a.render()).unwrap();
        assert_eq!(a.allow, b.allow);
        assert_eq!(a.forbid_headers, b.forbid_headers);
        assert_eq!(a.deny_headers, b.deny_headers);
    }

    #[test]
    fn missing_reason_is_an_error() {
        let err = parse_allowlist("[[allow]]\npath = \"x.rs\"\n").unwrap_err();
        assert!(err.contains("missing `reason`"), "{err}");
    }

    #[test]
    fn unknown_key_is_an_error() {
        let err = parse_allowlist("[[allow]]\npath = \"x.rs\"\nwhy = \"no\"\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn key_outside_table_is_an_error() {
        assert!(parse_allowlist("path = \"x\"\n").is_err());
    }
}
