//! `nulpa-check`: static kernel effect verifier + workspace invariant
//! linter.
//!
//! sancheck proves the execution-model invariants *dynamically*, by
//! shadowing one run of one graph. This crate proves a complementary
//! slice *statically*, from declared kernel effects — no graph, no run,
//! no luck involved:
//!
//! - **Layer 1 (solver, [`solver`])** — each kernel declares an
//!   [`Effects`](nulpa_simt::effects::Effects) descriptor: its reads,
//!   writes and atomics as symbolic address expressions over
//!   `(tid, vertex, CSR offsets)`, its barrier sites with dominating
//!   predicates, its staging class and probe bound. The solver
//!   discharges lane-pairwise disjointness, staged-write discipline,
//!   barrier uniformity, probe budgets and immediate-write confinement
//!   over *all* graphs at once, using only CSR monotonicity
//!   (`off(v′) ≥ off(v) + deg(v)` for consecutive vertices).
//! - **Layer 2 (linter, [`lint`])** — a lexical pass over the workspace
//!   source enforcing that the declarations cannot silently drift from
//!   the code: every production launch names a registered descriptor,
//!   staging primitives stay in kernel scope, the SIMT scheduler stays
//!   deterministic, and `unsafe` stays inside the committed manifest
//!   (`check/unsafe_allowlist.toml`).
//!
//! The declarations themselves are trusted input — the linter pins them
//! to launch sites, and the cross-validation test in `tests/check.rs`
//! pins them to reality by requiring static-clean ⇒ sancheck-clean on
//! the built-in graph trio. Fault-injection descriptors ([`inject`])
//! prove the solver actually rejects each violation class it claims to
//! cover, with exact (kernel, address-expression, lane-pair)
//! attribution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inject;
pub mod lint;
pub mod manifest;
pub mod report;
pub mod scan;
pub mod solver;

pub use inject::{injected_faults, register_injected, InjectedFault};
pub use lint::{lint_workspace, ALLOWLIST_PATH};
pub use manifest::{parse_allowlist, AllowEntry, Allowlist};
pub use report::{CheckReport, Finding, FindingKind, LanePair};
pub use solver::{verify, verify_layout};

use nulpa_simt::effects::EffectsRegistry;
use std::path::Path;

/// Run both layers: verify every registered kernel's effects, then lint
/// the workspace rooted at `root`. This is what `nulpa check` runs.
pub fn run_check(root: &Path, registry: &EffectsRegistry) -> CheckReport {
    let mut report = solver::verify(registry);
    lint::lint_workspace(root, registry, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_workspace_is_statically_clean() {
        // The real repository, with the real shipped descriptors, must
        // pass both layers — this is the in-crate version of the CI
        // gate. CARGO_MANIFEST_DIR is crates/check; the workspace root
        // is two levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        let registry = nulpa_core::shipped_effects();
        let rep = run_check(&root, &registry);
        assert!(
            rep.is_clean(),
            "shipped workspace has static findings:\n{}",
            rep.render()
        );
        assert_eq!(rep.kernels_checked, 4);
        assert!(rep.files_scanned > 20, "scanned {}", rep.files_scanned);
        assert!(rep.facts_checked > 50);
    }

    #[test]
    fn injected_registry_fails_the_gate() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        let mut registry = nulpa_core::shipped_effects();
        register_injected(&mut registry);
        let rep = run_check(&root, &registry);
        assert!(rep.total_findings() >= 6);
        assert!(!rep.is_clean());
    }
}
