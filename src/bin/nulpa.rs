//! `nulpa` — command-line community detection and graph partitioning.
//!
//! ```text
//! nulpa stats     <graph>                       graph statistics
//! nulpa detect    <graph> [options]             community detection
//! nulpa partition <graph> -k <parts> [options]  balanced k-way partitioning
//! nulpa generate  <dataset> [options]           write a synthetic stand-in
//! ```
//!
//! Graphs are read as MatrixMarket (`.mtx`) or whitespace edge lists
//! (anything else); `-` reads an edge list from stdin. Outputs one label
//! per line in vertex order.
//!
//! `detect --trace <path>` writes a structured trace of the run:
//! `.jsonl` paths get a line-delimited event stream, anything else a
//! Chrome trace-event file loadable in Perfetto (`ui.perfetto.dev`).
//! `nulpa trace <path>` summarises either format.

use nu_lpa::baselines::{
    flpa, gunrock_lp, gve_lpa, leiden, louvain, networkit_plp, GunrockConfig, GveLpaConfig,
    LeidenConfig, LouvainConfig, PlpConfig,
};
use nu_lpa::core::{
    coarsen_lpa, lpa_gpu_traced, lpa_native, lpa_native_traced, pulp_partition, top_k_predictions,
    CoarsenConfig, LpaConfig, PulpConfig,
};
use nu_lpa::graph::datasets::spec_by_name;
use nu_lpa::graph::io::{read_edge_list, read_matrix_market, write_edge_list};
use nu_lpa::graph::stats::average_clustering;
use nu_lpa::graph::subgraph::community_subgraph;
use nu_lpa::graph::Csr;
use nu_lpa::metrics::{community_count, cut_fraction, imbalance, modularity_par};
use nu_lpa::obs::{summary, ChromeTraceSink, Hist, JsonlSink, NullSink, TraceSink, Value};
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::time::Instant;

// Meter the heap: every `nulpa` allocation goes through the counting
// shim so `stats`/`--telemetry` can report peak/current heap bytes.
#[cfg(feature = "telemetry")]
nu_lpa::telemetry::install_counting_alloc!();

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]),
        Some("detect") => cmd_detect(&args[1..]),
        Some("partition") => cmd_partition(&args[1..]),
        Some("coarsen") => cmd_coarsen(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("sancheck") => cmd_sancheck(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("--help") | Some("-h") | None => {
            usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "nulpa — nu-LPA community detection (paper reproduction)\n\n\
         USAGE:\n  nulpa stats [graph] [--backend B] [--json] [--history FILE] [--check BASELINE]\n              [--write-baseline FILE] [--telemetry FILE]   convergence observatory\n  \
         nulpa detect <graph> [--method M] [--threads N] [--frontier] [--bucket-thresholds L,M | --no-buckets]\n              [--output FILE] [--quality] [--trace FILE] [--telemetry FILE]\n  \
         nulpa partition <graph> -k N [--balance F] [--output FILE]\n  \
         nulpa coarsen <graph> --target N [--output FILE]\n  \
         nulpa inspect <graph> [--top N]\n  \
         nulpa predict <graph> [-k N]\n  \
         nulpa generate <dataset> [--scale F] [--output FILE]\n  \
         nulpa trace <tracefile> [--top K] [--json]\n  \
         nulpa sancheck [graph] [--json]   run backends under the hazard checker\n  \
         nulpa check [--json] [--inject]   static kernel effect verifier + workspace linter\n  \
         nulpa profile [graph] [--json] [--backend NAME] [--telemetry FILE]   cycle-attribution profile\n  \
         nulpa profile --host [graph] [--json] [--trace FILE] [--check BASELINE]\n              [--write-baseline FILE] [--telemetry FILE]   host-parallel observatory\n\n\
         HOST PROFILING: --host runs lpa_native's fast path at a 1/2/4\n  \
         thread ladder with the host-parallel profiler: per-thread busy\n  \
         time/utilization, per-bucket vertices/edges/chunks and cursor-CAS\n  \
         retries, repair-rate trajectory, and max/mean busy imbalance.\n  \
         --trace writes a Chrome/Perfetto trace of the last run's thread\n  \
         timelines; --check gates repair rate and imbalance against a\n  \
         committed baseline (results/hostprof_baseline.json).\n\n\
         STATS: runs the seq / nu-lpa / nu-lpa-sim backends with per-iteration\n  \
         convergence telemetry (dN, active fraction, entropy, modularity),\n  \
         wall-clock phase spans and heap accounting; --history appends run\n  \
         records to a JSONL ledger, --check gates against a committed baseline.\n\n\
         METHODS: nu-lpa (default), nu-lpa-sim (simulated A100), flpa,\n  \
         networkit, gunrock, louvain, leiden, gve-lpa\n\n\
         THREADS: --threads N (or NULPA_THREADS=N) sets the host threads\n  \
         driving nu-lpa / nu-lpa-sim; results are identical at any count.\n\n\
         FRONTIER: --frontier switches nu-lpa / nu-lpa-sim to worklist\n  \
         (active-set) scheduling: only re-activated vertices are scanned\n  \
         and, on the simulator, launched. Deterministic at any thread count.\n\n\
         BUCKETS: nu-lpa runs the degree-bucketed cache-blocked fast path\n  \
         by default; --bucket-thresholds LOW,MID sets the low/mid degree\n  \
         cutoffs (default 32,512) and --no-buckets falls back to the\n  \
         legacy per-vertex hashtable path.\n\n\
         TRACING: --trace x.jsonl writes a JSONL event stream; any other\n  \
         extension writes a Chrome trace-event file (open in Perfetto).\n  \
         Only nu-lpa and nu-lpa-sim are instrumented.\n\n\
         DATASETS: any Table-1 name, e.g. uk-2002, com-Orkut, asia_osm, kmer_A2a"
    );
}

fn load_graph(path: &str) -> Result<Csr, String> {
    if path == "-" {
        let stdin = std::io::stdin();
        return read_edge_list(stdin.lock(), None, true).map_err(|e| e.to_string());
    }
    let f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let r = BufReader::new(f);
    if path.ends_with(".mtx") {
        read_matrix_market(r).map_err(|e| format!("{path}: {e}"))
    } else {
        read_edge_list(r, None, true).map_err(|e| format!("{path}: {e}"))
    }
}

fn write_labels(labels: &[u32], output: Option<&str>) -> Result<(), String> {
    match output {
        None => Ok(()),
        Some(path) => {
            let f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            let mut w = BufWriter::new(f);
            for l in labels {
                writeln!(w, "{l}").map_err(|e| e.to_string())?;
            }
            w.flush().map_err(|e| e.to_string())
        }
    }
}

/// Parse `--bucket-thresholds LOW,MID` (e.g. `32,512`).
fn parse_bucket_thresholds(s: &str) -> Result<nu_lpa::core::BucketThresholds, String> {
    let err = || format!("--bucket-thresholds: expected LOW,MID positive integers, got `{s}`");
    let (low, mid) = s.split_once(',').ok_or_else(err)?;
    let low_max = low.trim().parse::<u32>().map_err(|_| err())?;
    let mid_max = mid.trim().parse::<u32>().map_err(|_| err())?;
    Ok(nu_lpa::core::BucketThresholds { low_max, mid_max })
}

fn opt_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// First positional (non-flag) argument, skipping the values consumed by
/// the listed value-taking flags.
fn positional<'a>(args: &'a [String], value_flags: &[&str]) -> Option<&'a String> {
    let mut skip_next = false;
    args.iter().find(|a| {
        if skip_next {
            skip_next = false;
            return false;
        }
        if value_flags.iter().any(|f| f == a) {
            skip_next = true;
            return false;
        }
        !a.starts_with("--")
    })
}

/// File-backed trace sink for `--trace`: format picked by extension
/// (`.jsonl` → JSONL event stream, anything else → Chrome trace-event
/// JSON for Perfetto).
enum FileSink {
    Jsonl(JsonlSink<BufWriter<std::fs::File>>),
    Chrome(ChromeTraceSink<BufWriter<std::fs::File>>),
}

impl FileSink {
    fn create(path: &str) -> Result<Self, String> {
        let f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        let w = BufWriter::new(f);
        Ok(if path.ends_with(".jsonl") {
            FileSink::Jsonl(JsonlSink::new(w))
        } else {
            FileSink::Chrome(ChromeTraceSink::new(w))
        })
    }

    /// Finalise, flush, and surface any deferred I/O error.
    fn close(self, path: &str) -> Result<(), String> {
        let err = |e: std::io::Error| format!("{path}: {e}");
        match self {
            FileSink::Jsonl(mut s) => {
                s.finish();
                if let Some(e) = s.take_error() {
                    return Err(err(e));
                }
                s.into_inner().map_err(&err)?.flush().map_err(&err)
            }
            FileSink::Chrome(mut s) => {
                s.finish();
                if let Some(e) = s.take_error() {
                    return Err(err(e));
                }
                s.into_inner().map_err(&err)?.flush().map_err(&err)
            }
        }
    }
}

impl TraceSink for FileSink {
    fn span_begin(&mut self, track: u32, name: &str, ts: u64, args: &[(&str, Value)]) {
        match self {
            FileSink::Jsonl(s) => s.span_begin(track, name, ts, args),
            FileSink::Chrome(s) => s.span_begin(track, name, ts, args),
        }
    }
    fn span_end(&mut self, track: u32, name: &str, ts: u64, args: &[(&str, Value)]) {
        match self {
            FileSink::Jsonl(s) => s.span_end(track, name, ts, args),
            FileSink::Chrome(s) => s.span_end(track, name, ts, args),
        }
    }
    fn counter(&mut self, name: &str, ts: u64, value: f64) {
        match self {
            FileSink::Jsonl(s) => s.counter(name, ts, value),
            FileSink::Chrome(s) => s.counter(name, ts, value),
        }
    }
    fn hist_sample(&mut self, name: &str, value: u64) {
        match self {
            FileSink::Jsonl(s) => s.hist_sample(name, value),
            FileSink::Chrome(s) => s.hist_sample(name, value),
        }
    }
    fn histogram(&mut self, name: &str, hist: &Hist) {
        match self {
            FileSink::Jsonl(s) => s.histogram(name, hist),
            FileSink::Chrome(s) => s.histogram(name, hist),
        }
    }
    fn finish(&mut self) {
        match self {
            FileSink::Jsonl(s) => s.finish(),
            FileSink::Chrome(s) => s.finish(),
        }
    }
}

/// Print the classic graph statistics block (kept stable — scripts and
/// the CLI tests match on these lines).
fn print_graph_stats(g: &Csr) {
    println!("vertices:     {}", g.num_vertices());
    println!(
        "edges:        {} directed ({} undirected)",
        g.num_edges(),
        g.num_edges() / 2
    );
    println!("avg degree:   {:.2}", g.avg_degree());
    println!("max degree:   {}", g.max_degree());
    println!("total weight: {:.1}", g.total_weight());
    println!("self loops:   {}", g.num_self_loops());
    println!("symmetric:    {}", g.is_symmetric());
}

#[cfg(not(feature = "telemetry"))]
fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("stats: missing graph path")?;
    let g = load_graph(path)?;
    print_graph_stats(&g);
    Ok(())
}

/// `nulpa stats`: the convergence observatory. With a graph argument,
/// print its statistics and then run the telemetered backend matrix over
/// it; without one, use the built-in trio. Every run records wall-clock
/// phase spans, heap footprint, and the per-iteration convergence
/// trajectory (ΔN, active fraction, communities, entropy, incremental
/// modularity). `--history` appends run records to the JSONL ledger,
/// `--write-baseline`/`--check` drive the quality gate, `--telemetry`
/// dumps the metrics registry (`.prom` or JSONL).
#[cfg(feature = "telemetry")]
fn cmd_stats(args: &[String]) -> Result<(), String> {
    use nu_lpa::core::resolve_threads;
    use nu_lpa::graph::gen::{caveman_weighted, erdos_renyi, two_cliques_light_bridge};
    use nu_lpa::obs::meta::run_meta;
    use nu_lpa::telemetry::{
        append_history, global, heap_stats, peak_rss_bytes, write_snapshot, PhaseSpan, RunRecord,
    };

    const VALUE_FLAGS: &[&str] = &[
        "--backend",
        "--history",
        "--check",
        "--write-baseline",
        "--telemetry",
    ];
    let json = args.iter().any(|a| a == "--json");
    let backend_filter = opt_value(args, "--backend");
    let graphs: Vec<(String, Csr)> = match positional(args, VALUE_FLAGS) {
        Some(p) => {
            let span = PhaseSpan::new("load");
            let g = load_graph(p)?;
            span.finish();
            vec![(p.clone(), g)]
        }
        None => {
            let span = PhaseSpan::new("load");
            let trio = vec![
                ("two-cliques-s6".into(), two_cliques_light_bridge(6)),
                ("caveman-4x8".into(), caveman_weighted(4, 8, 0.5)),
                ("erdos-renyi-256".into(), erdos_renyi(256, 768, 42)),
            ];
            span.finish();
            trio
        }
    };

    const BACKENDS: &[&str] = &[
        "seq",
        "nu-lpa",
        "nu-lpa-nobuckets",
        "nu-lpa-sim",
        "seq-frontier",
        "nu-lpa-frontier",
        "nu-lpa-sim-frontier",
    ];
    let backends: Vec<&str> = BACKENDS
        .iter()
        .copied()
        .filter(|b| backend_filter.is_none_or(|f| *b == f))
        .collect();
    if backends.is_empty() {
        return Err(format!(
            "stats: unknown backend `{}` (available: {})",
            backend_filter.unwrap_or(""),
            BACKENDS.join(", ")
        ));
    }

    let cfg = LpaConfig::default();
    let meta = run_meta(&[
        ("threads", resolve_threads(cfg.threads).to_string()),
        ("device", cfg.device.preset_name()),
        ("probe", cfg.probe.label().to_string()),
        (
            "hw_threads",
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .to_string(),
        ),
    ]);

    let mut records = Vec::new();
    for (gname, g) in &graphs {
        if !json {
            println!("graph: {gname}");
            print_graph_stats(g);
        }
        for backend in &backends {
            let span = PhaseSpan::new("iterate");
            let run = run_observed(backend, g, &cfg)?;
            let iterate = span.finish();
            let wall_ms = iterate.wall_ns as f64 / 1e6;
            let heap = heap_stats();
            let record = RunRecord {
                meta: meta.clone(),
                graph: gname.clone(),
                backend: backend.to_string(),
                n: g.num_vertices(),
                m: g.num_edges(),
                wall_ms,
                phases: vec![iterate],
                peak_heap_bytes: heap.map(|h| h.peak_bytes),
                peak_rss_bytes: peak_rss_bytes(),
                iterations: run.result.iterations,
                converged: run.result.converged,
                communities: run.result.num_communities(),
                modularity: run.final_q,
                trajectory: run.samples,
            };
            if !json {
                print_run_record(&record);
            }
            records.push(record);
        }
        if !json {
            println!();
        }
    }

    if json {
        let runs: Vec<String> = records.iter().map(RunRecord::to_json).collect();
        println!(
            "{{\"meta\":{},\"runs\":[{}]}}",
            nu_lpa::obs::meta::meta_json(&meta),
            runs.join(",")
        );
    }
    if let Some(path) = opt_value(args, "--history") {
        append_history(path, &records)?;
        if !json {
            eprintln!("{} run records appended to {path}", records.len());
        }
    }
    if let Some(path) = opt_value(args, "--write-baseline") {
        std::fs::write(path, baseline_json(&meta, &records)).map_err(|e| format!("{path}: {e}"))?;
        if !json {
            eprintln!("baseline written to {path}");
        }
    }
    if let Some(path) = opt_value(args, "--telemetry") {
        write_snapshot(path, &global().snapshot())?;
        if !json {
            eprintln!("telemetry snapshot written to {path}");
        }
    }
    if let Some(path) = opt_value(args, "--check") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        check_against_baseline(&text, &records)?;
        eprintln!("quality gate: ok ({} runs within tolerance)", records.len());
    }
    Ok(())
}

/// One telemetered backend run: result, trajectory, final modularity.
#[cfg(feature = "telemetry")]
struct ObservedRun {
    result: nu_lpa::core::LpaResult,
    samples: Vec<nu_lpa::telemetry::IterationSample>,
    final_q: f64,
}

#[cfg(feature = "telemetry")]
fn run_observed(backend: &str, g: &Csr, cfg: &LpaConfig) -> Result<ObservedRun, String> {
    use nu_lpa::core::{lpa_gpu_observed, lpa_native_observed, lpa_seq_observed};
    use nu_lpa::telemetry::ConvergenceRecorder;

    let mut rec = ConvergenceRecorder::new(g);
    let mut sink = NullSink;
    // `<backend>-frontier` rows run the same backend in worklist mode, so
    // the quality gate also pins the frontier scheduler's modularity and
    // the ledger records its collapsing `scanned` trajectory.
    let (backend, cfg) = match backend.strip_suffix("-frontier") {
        Some(base) => (base, cfg.with_frontier(true)),
        None => (backend, *cfg),
    };
    let result = match backend {
        "seq" => lpa_seq_observed(g, &cfg, &mut sink, &mut rec),
        "nu-lpa" => lpa_native_observed(g, &cfg, &mut sink, &mut rec),
        // The legacy per-vertex hashtable path, kept in the observatory so
        // the fast path's quality and footprint are pinned against it.
        "nu-lpa-nobuckets" => lpa_native_observed(g, &cfg.with_buckets(None), &mut sink, &mut rec),
        "nu-lpa-sim" => lpa_gpu_observed(g, &cfg, &mut sink, &mut rec),
        other => return Err(format!("stats: unknown backend `{other}`")),
    };
    let final_q = rec.final_modularity();
    Ok(ObservedRun {
        result,
        samples: rec.samples,
        final_q,
    })
}

/// Human-readable rendering of one run record: summary line, phase
/// breakdown, memory footprint, and the convergence trajectory table.
#[cfg(feature = "telemetry")]
fn print_run_record(r: &nu_lpa::telemetry::RunRecord) {
    println!(
        "backend {}: {} iterations ({}), {} communities, Q = {:.4}, {:.2} ms",
        r.backend,
        r.iterations,
        if r.converged {
            "converged"
        } else {
            "iteration cap"
        },
        r.communities,
        r.modularity,
        r.wall_ms
    );
    for p in &r.phases {
        println!(
            "  phase {:<10} {:>10.3} ms  {:>12} bytes in {} allocs",
            p.name,
            p.wall_ns as f64 / 1e6,
            p.alloc_bytes,
            p.allocs
        );
    }
    match (r.peak_heap_bytes, r.peak_rss_bytes) {
        (Some(h), Some(rss)) => println!(
            "  peak heap: {:.2} MiB, peak RSS: {:.2} MiB",
            h as f64 / (1 << 20) as f64,
            rss as f64 / (1 << 20) as f64
        ),
        (Some(h), None) => println!("  peak heap: {:.2} MiB", h as f64 / (1 << 20) as f64),
        (None, _) => println!("  peak heap: unavailable (counting allocator not installed)"),
    }
    println!(
        "  {:>4} {:>8} {:>8} {:>7} {:>8} {:>7} {:>9} {:>9}",
        "iter", "dN", "active", "frac", "scanned", "comms", "entropy", "Q"
    );
    const MAX_ROWS: usize = 24;
    for (i, s) in r.trajectory.iter().enumerate() {
        if r.trajectory.len() > MAX_ROWS && i == MAX_ROWS / 2 {
            println!(
                "  ... ({} iterations elided) ...",
                r.trajectory.len() - MAX_ROWS
            );
        }
        if r.trajectory.len() > MAX_ROWS
            && (MAX_ROWS / 2..r.trajectory.len() - MAX_ROWS / 2).contains(&i)
        {
            continue;
        }
        println!(
            "  {:>4} {:>8} {:>8} {:>7.3} {:>8} {:>7} {:>9.3} {:>9.4}",
            s.iter,
            s.delta_n,
            s.active,
            s.active_fraction,
            s.scanned,
            s.communities,
            s.entropy_bits,
            s.modularity
        );
    }
}

/// Serialise the quality-gate baseline: per (graph, backend) final
/// modularity, wall-clock, and peak heap.
#[cfg(feature = "telemetry")]
fn baseline_json(meta: &[(String, String)], records: &[nu_lpa::telemetry::RunRecord]) -> String {
    use nu_lpa::obs::json::{escape, fmt_f64};
    let mut out = String::from("{\"meta\":");
    out.push_str(&nu_lpa::obs::meta::meta_json(meta));
    out.push_str(",\"entries\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"graph\":{},\"backend\":{},\"modularity\":{},\"wall_ms\":{},\"peak_heap_bytes\":{}}}",
            escape(&r.graph),
            escape(&r.backend),
            fmt_f64(r.modularity),
            fmt_f64(r.wall_ms),
            r.peak_heap_bytes
                .map(|b| b.to_string())
                .unwrap_or_else(|| "null".into())
        ));
    }
    out.push_str("]}\n");
    out
}

/// The quality gate: compare current runs against a committed baseline.
///
/// Fails on a >1% relative modularity drop — deterministic, so this is
/// the hard gate. Wall-clock and peak-heap regressions fail only beyond
/// 10% AND above absolute floors (250 ms / 16 MiB): below the floors the
/// built-in trio measures scheduler noise, not the algorithm.
#[cfg(feature = "telemetry")]
fn check_against_baseline(
    baseline_text: &str,
    records: &[nu_lpa::telemetry::RunRecord],
) -> Result<(), String> {
    use nu_lpa::obs::json::Json;
    const MOD_DROP_FRAC: f64 = 0.01;
    const REGRESSION_FRAC: f64 = 0.10;
    const WALL_FLOOR_MS: f64 = 250.0;
    const HEAP_FLOOR_BYTES: f64 = 16.0 * (1 << 20) as f64;

    let doc = nu_lpa::obs::json::parse(baseline_text)
        .map_err(|e| format!("quality gate: baseline does not parse: {e}"))?;
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("quality gate: baseline has no `entries` array")?;
    let mut matched = 0usize;
    let mut failures = Vec::new();
    for e in entries {
        let graph = e.get("graph").and_then(Json::as_str).unwrap_or("");
        let backend = e.get("backend").and_then(Json::as_str).unwrap_or("");
        let Some(r) = records
            .iter()
            .find(|r| r.graph == graph && r.backend == backend)
        else {
            continue;
        };
        matched += 1;
        if let Some(base_q) = e.get("modularity").and_then(Json::as_f64) {
            let drop = base_q - r.modularity;
            if drop > MOD_DROP_FRAC * base_q.abs().max(1e-9) {
                failures.push(format!(
                    "{graph}/{backend}: modularity {:.4} dropped >1% below baseline {:.4}",
                    r.modularity, base_q
                ));
            }
        }
        if let Some(base_ms) = e.get("wall_ms").and_then(Json::as_f64) {
            if r.wall_ms > base_ms * (1.0 + REGRESSION_FRAC) && r.wall_ms > WALL_FLOOR_MS {
                failures.push(format!(
                    "{graph}/{backend}: wall {:.1} ms regressed >10% over baseline {:.1} ms",
                    r.wall_ms, base_ms
                ));
            }
        }
        if let (Some(base_heap), Some(cur_heap)) = (
            e.get("peak_heap_bytes").and_then(Json::as_f64),
            r.peak_heap_bytes,
        ) {
            let cur = cur_heap as f64;
            if cur > base_heap * (1.0 + REGRESSION_FRAC) && cur > HEAP_FLOOR_BYTES {
                failures.push(format!(
                    "{graph}/{backend}: peak heap {:.1} MiB regressed >10% over baseline {:.1} MiB",
                    cur / (1 << 20) as f64,
                    base_heap / (1 << 20) as f64
                ));
            }
        }
    }
    if matched == 0 {
        return Err("quality gate: no current runs matched any baseline entry".into());
    }
    if !failures.is_empty() {
        return Err(format!(
            "quality gate: {} regressions:\n  {}",
            failures.len(),
            failures.join("\n  ")
        ));
    }
    Ok(())
}

fn cmd_detect(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("detect: missing graph path")?;
    let telemetry_path = opt_value(args, "--telemetry");
    #[cfg(not(feature = "telemetry"))]
    if telemetry_path.is_some() {
        return Err(
            "--telemetry: this binary was built without the `telemetry` feature \
                    (rebuild with default features)"
                .into(),
        );
    }
    // Phase spans are opened only when telemetry output was requested —
    // untelemetered runs stay observation-free.
    #[cfg(feature = "telemetry")]
    let load_span = telemetry_path.map(|_| nu_lpa::telemetry::PhaseSpan::new("load"));
    let g = load_graph(path)?;
    #[cfg(feature = "telemetry")]
    if let Some(span) = load_span {
        span.finish();
    }
    let method = opt_value(args, "--method").unwrap_or("nu-lpa");
    let output = opt_value(args, "--output");
    let quality = args.iter().any(|a| a == "--quality");
    let trace_path = opt_value(args, "--trace");
    // 0 = resolve from NULPA_THREADS / available parallelism
    let threads: usize = opt_value(args, "--threads")
        .map(|s| {
            s.parse::<usize>()
                .ok()
                .filter(|&t| t > 0)
                .ok_or("detect: --threads needs a positive integer")
        })
        .transpose()?
        .unwrap_or(0);
    let frontier = args.iter().any(|a| a == "--frontier");
    if frontier && !matches!(method, "nu-lpa" | "nu-lpa-sim") {
        return Err(format!(
            "--frontier: method `{method}` has no frontier mode (use nu-lpa or nu-lpa-sim)"
        ));
    }
    let no_buckets = args.iter().any(|a| a == "--no-buckets");
    let bucket_thresholds = opt_value(args, "--bucket-thresholds")
        .map(parse_bucket_thresholds)
        .transpose()?;
    if (no_buckets || bucket_thresholds.is_some()) && method != "nu-lpa" {
        return Err(format!(
            "--bucket-thresholds/--no-buckets: method `{method}` has no host fast path (use nu-lpa)"
        ));
    }
    if no_buckets && bucket_thresholds.is_some() {
        return Err("--no-buckets conflicts with --bucket-thresholds".into());
    }
    let mut cfg = LpaConfig::default()
        .with_threads(threads)
        .with_frontier(frontier);
    if no_buckets {
        cfg = cfg.with_buckets(None);
    } else if let Some(b) = bucket_thresholds {
        cfg = cfg.with_buckets(Some(b));
    }
    cfg.validate()?;
    if trace_path.is_some() && !matches!(method, "nu-lpa" | "nu-lpa-sim") {
        return Err(format!(
            "--trace: method `{method}` is not instrumented (use nu-lpa or nu-lpa-sim)"
        ));
    }
    let mut file_sink = trace_path.map(FileSink::create).transpose()?;
    let mut null = NullSink;

    #[cfg(feature = "telemetry")]
    let iterate_span = telemetry_path.map(|_| nu_lpa::telemetry::PhaseSpan::new("iterate"));
    let t0 = Instant::now();
    let labels: Vec<u32> = {
        let sink: &mut dyn TraceSink = match file_sink.as_mut() {
            Some(s) => s,
            None => &mut null,
        };
        match method {
            "nu-lpa" => lpa_native_traced(&g, &cfg, sink).labels,
            "nu-lpa-sim" => {
                let r = lpa_gpu_traced(&g, &cfg, sink);
                eprintln!(
                    "simulated: {} cycles, {} waves, {:.1}% divergence, {} probes",
                    r.stats.sim_cycles,
                    r.stats.waves,
                    100.0 * r.stats.divergence_ratio(),
                    r.stats.probes
                );
                r.labels
            }
            "flpa" => flpa(&g, 1).labels,
            "networkit" => networkit_plp(&g, &PlpConfig::default()).labels,
            "gunrock" => gunrock_lp(&g, &GunrockConfig::default()).labels,
            "louvain" => louvain(&g, &LouvainConfig::default()).labels,
            "leiden" => leiden(&g, &LeidenConfig::default()).labels,
            "gve-lpa" => gve_lpa(&g, &GveLpaConfig::default()).labels,
            other => return Err(format!("unknown method `{other}`")),
        }
    };
    let elapsed = t0.elapsed();
    #[cfg(feature = "telemetry")]
    if let Some(span) = iterate_span {
        span.finish();
    }
    if let (Some(s), Some(tp)) = (file_sink, trace_path) {
        s.close(tp)?;
        eprintln!("trace written to {tp}");
    }
    #[cfg(feature = "telemetry")]
    if let Some(tp) = telemetry_path {
        nu_lpa::telemetry::write_snapshot(tp, &nu_lpa::telemetry::global().snapshot())?;
        eprintln!("telemetry snapshot written to {tp}");
    }

    eprintln!(
        "{} communities in {:.2?} ({:.1} M edges/s)",
        community_count(&labels),
        elapsed,
        g.num_edges() as f64 / elapsed.as_secs_f64().max(1e-9) / 1e6
    );
    if quality {
        eprintln!("modularity Q = {:.4}", modularity_par(&g, &labels));
    }
    match output {
        Some(_) => write_labels(&labels, output),
        None => {
            let out = std::io::stdout();
            let mut w = BufWriter::new(out.lock());
            for l in &labels {
                writeln!(w, "{l}").map_err(|e| e.to_string())?;
            }
            Ok(())
        }
    }
}

fn cmd_partition(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("partition: missing graph path")?;
    let g = load_graph(path)?;
    let k: usize = opt_value(args, "-k")
        .ok_or("partition: missing -k <parts>")?
        .parse()
        .map_err(|_| "partition: bad -k value")?;
    let balance: f64 = opt_value(args, "--balance")
        .map(|s| s.parse().map_err(|_| "partition: bad --balance"))
        .transpose()?
        .unwrap_or(1.05);

    let t0 = Instant::now();
    let r = pulp_partition(
        &g,
        &PulpConfig {
            num_parts: k,
            balance,
            ..Default::default()
        },
    );
    eprintln!(
        "{k}-way partition in {:.2?}: cut fraction {:.4}, imbalance {:.3}, {} sweeps",
        t0.elapsed(),
        cut_fraction(&g, &r.parts),
        imbalance(&r.parts, k),
        r.iterations
    );
    write_labels(&r.parts, opt_value(args, "--output"))?;
    if opt_value(args, "--output").is_none() {
        let out = std::io::stdout();
        let mut w = BufWriter::new(out.lock());
        for p in &r.parts {
            writeln!(w, "{p}").map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn cmd_coarsen(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("coarsen: missing graph path")?;
    let g = load_graph(path)?;
    let target: usize = opt_value(args, "--target")
        .map(|s| s.parse().map_err(|_| "coarsen: bad --target"))
        .transpose()?
        .unwrap_or(64);
    let t0 = Instant::now();
    let h = coarsen_lpa(
        &g,
        &CoarsenConfig {
            target_vertices: target,
            ..Default::default()
        },
    );
    match h.coarsest() {
        None => {
            eprintln!("graph already at or below the target size; nothing to do");
            Ok(())
        }
        Some(coarsest) => {
            eprintln!(
                "{} levels in {:.2?}: {} -> {} vertices, {} -> {} edges",
                h.levels.len(),
                t0.elapsed(),
                g.num_vertices(),
                coarsest.num_vertices(),
                g.num_edges(),
                coarsest.num_edges(),
            );
            match opt_value(args, "--output") {
                Some(out) => {
                    let f = std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?;
                    write_edge_list(coarsest, BufWriter::new(f)).map_err(|e| e.to_string())
                }
                None => {
                    let out = std::io::stdout();
                    write_edge_list(coarsest, BufWriter::new(out.lock())).map_err(|e| e.to_string())
                }
            }
        }
    }
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("inspect: missing graph path")?;
    let g = load_graph(path)?;
    let top: usize = opt_value(args, "--top")
        .map(|s| s.parse().map_err(|_| "inspect: bad --top"))
        .transpose()?
        .unwrap_or(5);

    let labels = lpa_native(&g, &LpaConfig::default()).labels;
    let mut sizes: Vec<(u32, usize)> = nu_lpa::metrics::community_sizes(&labels)
        .into_iter()
        .enumerate()
        .filter(|&(_, s)| s > 0)
        .map(|(c, s)| (c as u32, s))
        .collect();
    sizes.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    println!(
        "{} communities, Q = {:.4}; top {}:",
        sizes.len(),
        modularity_par(&g, &labels),
        top.min(sizes.len())
    );
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>12}",
        "community", "size", "edges", "density", "clustering"
    );
    for &(c, size) in sizes.iter().take(top) {
        let sub = community_subgraph(&g, &labels, c);
        let m = sub.graph.num_edges() / 2;
        let possible = size * size.saturating_sub(1) / 2;
        println!(
            "{:<12} {:>8} {:>10} {:>12.4} {:>12.4}",
            c,
            size,
            m,
            if possible == 0 {
                0.0
            } else {
                m as f64 / possible as f64
            },
            average_clustering(&sub.graph),
        );
    }
    Ok(())
}

fn cmd_predict(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("predict: missing graph path")?;
    let g = load_graph(path)?;
    let k: usize = opt_value(args, "-k")
        .map(|s| s.parse().map_err(|_| "predict: bad -k"))
        .transpose()?
        .unwrap_or(10);
    let t0 = Instant::now();
    let labels = lpa_native(&g, &LpaConfig::default()).labels;
    let preds = top_k_predictions(&g, &labels, k);
    eprintln!(
        "{} predictions in {:.2?} (community-aware Adamic-Adar)",
        preds.len(),
        t0.elapsed()
    );
    let out = std::io::stdout();
    let mut w = BufWriter::new(out.lock());
    for (u, v, s) in preds {
        writeln!(w, "{u} {v} {s:.6}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("generate: missing dataset name")?;
    let spec = spec_by_name(name).ok_or_else(|| format!("unknown dataset `{name}`"))?;
    let scale: f64 = opt_value(args, "--scale")
        .map(|s| s.parse().map_err(|_| "generate: bad --scale"))
        .transpose()?
        .unwrap_or(nu_lpa::graph::datasets::DEFAULT_SCALE);
    let d = spec.generate(scale);
    eprintln!(
        "{}: {} vertices, {} edges (stand-in for {} at scale {scale})",
        name,
        d.graph.num_vertices(),
        d.graph.num_edges(),
        spec.name
    );
    match opt_value(args, "--output") {
        Some(path) => {
            let f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            write_edge_list(&d.graph, BufWriter::new(f)).map_err(|e| e.to_string())
        }
        None => {
            let out = std::io::stdout();
            write_edge_list(&d.graph, BufWriter::new(out.lock())).map_err(|e| e.to_string())
        }
    }
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let path = positional(args, &["--top"]).ok_or("trace: missing trace file path")?;
    let json = args.iter().any(|a| a == "--json");
    let top: Option<usize> = opt_value(args, "--top")
        .map(|s| {
            s.parse::<usize>()
                .ok()
                .filter(|&k| k > 0)
                .ok_or("trace: --top needs a positive integer")
        })
        .transpose()?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    // A parse failure propagates as Err and exits non-zero in both modes.
    let s = summary::summarize(&text).map_err(|e| format!("{path}: {e}"))?;
    if json {
        println!("{}", summary::summary_to_json(&s));
    } else {
        match top {
            Some(k) => print!("{}", summary::render_top(&s, k)),
            None => print!("{}", summary::render(&s)),
        }
    }
    Ok(())
}

/// `nulpa profile`: `--host` profiles the native fast path's host-parallel
/// execution (per-thread/per-bucket attribution); otherwise the simulated
/// GPU backends run under the cycle-attribution profiler.
fn cmd_profile(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--host") {
        cmd_profile_host(args)
    } else {
        cmd_profile_sim(args)
    }
}

/// `nulpa profile --host`: the host-parallel execution observatory. Runs
/// `lpa_native` with the fast-path profiler over the built-in trio (or one
/// graph) at a 1/2/4 thread ladder, and reports per-thread utilization,
/// per-bucket work (vertices/edges/chunks/CAS retries), the repair-rate
/// trajectory, and the max/mean busy-time imbalance. `--trace` writes a
/// Chrome/Perfetto trace of the last run's thread timelines;
/// `--write-baseline`/`--check` drive the hostprof regression gate.
#[cfg(feature = "telemetry")]
fn cmd_profile_host(args: &[String]) -> Result<(), String> {
    use nu_lpa::core::lpa_native_hostprof;
    use nu_lpa::graph::gen::{caveman_weighted, erdos_renyi, two_cliques_light_bridge};
    use nu_lpa::obs::meta::{meta_json, run_meta};
    use nu_lpa::telemetry::hostprof as hp;

    const VALUE_FLAGS: &[&str] = &["--trace", "--check", "--write-baseline", "--telemetry"];
    const THREAD_LADDER: &[usize] = &[1, 2, 4];

    let json = args.iter().any(|a| a == "--json");
    let graphs: Vec<(String, Csr)> = match positional(args, VALUE_FLAGS) {
        Some(p) => vec![(p.clone(), load_graph(p)?)],
        None => vec![
            ("two-cliques-s6".into(), two_cliques_light_bridge(6)),
            ("caveman-4x8".into(), caveman_weighted(4, 8, 0.5)),
            ("erdos-renyi-256".into(), erdos_renyi(256, 768, 42)),
        ],
    };

    let mut reports = Vec::new();
    let mut last_trace: Option<(String, nu_lpa::core::HostProfData)> = None;
    for (gname, g) in &graphs {
        for &threads in THREAD_LADDER {
            let cfg = LpaConfig::default().with_threads(threads);
            let (_result, prof) = lpa_native_hostprof(g, &cfg);
            let Some(data) = prof else {
                return Err(
                    "profile --host: instrumentation compiled out (rebuild with the \
                     default `telemetry` feature, which enables nulpa-core/hostprof)"
                        .into(),
                );
            };
            let report = hp::summarize(gname, &data);
            hp::record_registry(&report);
            reports.push(report);
            last_trace = Some((gname.clone(), data));
        }
    }

    let meta = run_meta(&[(
        "hw_threads",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .to_string(),
    )]);
    if json {
        print!("{}", hp::report_json(&meta_json(&meta), &reports));
    } else {
        print!("{}", hp::render_report(&reports));
    }
    if let Some(path) = opt_value(args, "--trace") {
        let (gname, data) = last_trace.as_ref().expect("ladder ran at least once");
        let f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        let mut w = hp::write_chrome_trace(BufWriter::new(f), gname, data)
            .map_err(|e| format!("{path}: {e}"))?;
        w.flush().map_err(|e| format!("{path}: {e}"))?;
        if !json {
            eprintln!("chrome trace of {gname} (last ladder run) written to {path}");
        }
    }
    if let Some(path) = opt_value(args, "--write-baseline") {
        std::fs::write(path, hp::baseline_json(&reports)).map_err(|e| format!("{path}: {e}"))?;
        if !json {
            eprintln!("hostprof baseline written to {path}");
        }
    }
    if let Some(path) = opt_value(args, "--telemetry") {
        nu_lpa::telemetry::write_snapshot(path, &nu_lpa::telemetry::global().snapshot())?;
        if !json {
            eprintln!("telemetry snapshot written to {path}");
        }
    }
    if let Some(path) = opt_value(args, "--check") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        match hp::check_against_baseline(&text, &reports) {
            Ok(matched) => eprintln!("hostprof gate: ok ({matched} rows within tolerance)"),
            Err(failures) => {
                return Err(format!(
                    "hostprof gate: {} regressions:\n  {}",
                    failures.len(),
                    failures.join("\n  ")
                ))
            }
        }
    }
    Ok(())
}

/// Stub when host telemetry is compiled out.
#[cfg(not(feature = "telemetry"))]
fn cmd_profile_host(_args: &[String]) -> Result<(), String> {
    Err(
        "profile --host: this binary was built without the `telemetry` feature \
         (rebuild with default features)"
            .into(),
    )
}

/// `nulpa profile` (without `--host`): run the simulated-GPU backend
/// matrix under the cycle-attribution profiler and print per-kernel
/// component breakdowns, a roofline summary and the per-SM occupancy
/// timeline. Without a graph argument the built-in trio is profiled;
/// `--backend NAME` restricts the backend matrix; `--json` prints the
/// machine-readable report the perf gate compares.
#[cfg(feature = "prof")]
fn cmd_profile_sim(args: &[String]) -> Result<(), String> {
    use nu_lpa::core::resolve_threads;
    use nu_lpa::graph::gen::{caveman_weighted, erdos_renyi, two_cliques_light_bridge};
    use nu_lpa::obs::meta::run_meta;
    use nu_lpa::prof::{backends, json::report_to_json, profile_graph, render::render};

    let json = args.iter().any(|a| a == "--json");
    let backend_filter = opt_value(args, "--backend");
    let telemetry_path = opt_value(args, "--telemetry");
    let graph_path = positional(args, &["--backend", "--telemetry"]);
    let graphs: Vec<(String, Csr)> = match graph_path {
        Some(p) => vec![(p.clone(), load_graph(p)?)],
        None => vec![
            ("two-cliques-s6".into(), two_cliques_light_bridge(6)),
            ("caveman-4x8".into(), caveman_weighted(4, 8, 0.5)),
            ("erdos-renyi-256".into(), erdos_renyi(256, 768, 42)),
        ],
    };
    let specs: Vec<_> = backends()
        .into_iter()
        .filter(|s| backend_filter.is_none_or(|f| s.name == f))
        .collect();
    if specs.is_empty() {
        let names: Vec<&str> = backends().iter().map(|s| s.name).collect();
        return Err(format!(
            "profile: unknown backend `{}` (available: {})",
            backend_filter.unwrap_or(""),
            names.join(", ")
        ));
    }

    let mut profiles = Vec::new();
    let mut leaked = 0usize;
    for (gname, g) in &graphs {
        for spec in &specs {
            #[cfg(feature = "telemetry")]
            let span = telemetry_path.map(|_| nu_lpa::telemetry::PhaseSpan::new("iterate"));
            let gp = profile_graph(gname, g, spec);
            #[cfg(feature = "telemetry")]
            if let Some(span) = span {
                span.finish();
            }
            if !json {
                print!("{}", render(&gp.profile));
                match &gp.conservation {
                    Ok(()) => println!(
                        "conservation: ok (components sum to KernelStats totals exactly); \
                         {} communities\n",
                        gp.communities
                    ),
                    Err(e) => println!("conservation: FAILED: {e}\n"),
                }
            }
            if gp.conservation.is_err() {
                leaked += 1;
            }
            profiles.push(gp);
        }
    }
    if json {
        let cfg = LpaConfig::default();
        let meta = run_meta(&[
            ("threads", resolve_threads(cfg.threads).to_string()),
            ("device", cfg.device.preset_name()),
            ("probe", cfg.probe.label().to_string()),
        ]);
        println!("{}", report_to_json(&meta, &profiles));
    }
    #[cfg(feature = "telemetry")]
    if let Some(tp) = telemetry_path {
        nu_lpa::telemetry::write_snapshot(tp, &nu_lpa::telemetry::global().snapshot())?;
        if !json {
            eprintln!("telemetry snapshot written to {tp}");
        }
    }
    #[cfg(not(feature = "telemetry"))]
    if telemetry_path.is_some() {
        return Err(
            "--telemetry: this binary was built without the `telemetry` feature \
                    (rebuild with default features)"
                .into(),
        );
    }
    if leaked > 0 {
        return Err(format!(
            "profile: attribution leaked cycles in {leaked} of {} runs",
            profiles.len()
        ));
    }
    Ok(())
}

/// Stub when the simulated-cycle profiler is compiled out.
#[cfg(not(feature = "prof"))]
fn cmd_profile_sim(_args: &[String]) -> Result<(), String> {
    Err("profile: this binary was built without the `prof` feature \
         (rebuild with default features)"
        .into())
}

/// `nulpa sancheck`: run the shipped backends under the dynamic hazard
/// checker (shadow-memory wave-race/invariant detection) and fail with a
/// non-zero exit if any hazard is reported. Without a graph argument a
/// built-in suite of small generated graphs is used; `--json` prints one
/// machine-readable report object per run.
#[cfg(feature = "sancheck")]
fn cmd_sancheck(args: &[String]) -> Result<(), String> {
    use nu_lpa::core::{lpa_gpu, SwapMode};
    use nu_lpa::graph::gen::{caveman_weighted, erdos_renyi, two_cliques_light_bridge};
    use nu_lpa::metrics::check_labels;
    use nu_lpa::obs::json::escape;
    use nu_lpa::sancheck::{install, uninstall, CheckerConfig};
    use nu_lpa::simt::DeviceConfig;

    let json = args.iter().any(|a| a == "--json");
    let graph_path = args.iter().find(|a| !a.starts_with("--"));
    let graphs: Vec<(String, Csr)> = match graph_path {
        Some(p) => vec![(p.clone(), load_graph(p)?)],
        None => vec![
            ("two-cliques-s6".into(), two_cliques_light_bridge(6)),
            ("caveman-4x8".into(), caveman_weighted(4, 8, 0.5)),
            ("erdos-renyi-256".into(), erdos_renyi(256, 768, 42)),
        ],
    };

    // Backend × device matrix. The CC1 run forces a Cross-Check pass after
    // every iteration, driving the atomic-exchange revert kernel; the tiny
    // device maximises wave count (and thus flush/epoch transitions) on
    // small graphs.
    let tiny = LpaConfig::default().with_device(DeviceConfig::tiny());
    let a100 = LpaConfig::default();
    let cc1 = tiny.with_swap_mode(SwapMode::CrossCheck { every: 1 });
    // Frontier rows drive the sparse compact + re-activation launch path
    // (including the `kernel:compact` reads) under the checker, on both a
    // single-wave and a multi-wave device.
    let tiny_f = tiny.with_frontier(true);
    let a100_f = a100.with_frontier(true);
    type RunFn = Box<dyn Fn(&Csr) -> Vec<u32>>;
    let runs: Vec<(&str, RunFn)> = vec![
        (
            "nu-lpa-sim/tiny",
            Box::new(move |g| lpa_gpu(g, &tiny).labels),
        ),
        (
            "nu-lpa-sim/a100",
            Box::new(move |g| lpa_gpu(g, &a100).labels),
        ),
        (
            "nu-lpa-sim/tiny+cc1",
            Box::new(move |g| lpa_gpu(g, &cc1).labels),
        ),
        (
            "nu-lpa-sim/tiny+frontier",
            Box::new(move |g| lpa_gpu(g, &tiny_f).labels),
        ),
        (
            "nu-lpa-sim/a100+frontier",
            Box::new(move |g| lpa_gpu(g, &a100_f).labels),
        ),
        (
            "nu-lpa",
            Box::new(|g| lpa_native(g, &LpaConfig::default()).labels),
        ),
        (
            "nu-lpa+frontier",
            Box::new(|g| lpa_native(g, &LpaConfig::default().with_frontier(true)).labels),
        ),
        (
            "gunrock",
            Box::new(|g| gunrock_lp(g, &GunrockConfig::default()).labels),
        ),
    ];

    let mut total_hazards = 0u64;
    let mut failed_runs = 0usize;
    let mut json_rows = Vec::new();
    for (gname, g) in &graphs {
        for (bname, run) in &runs {
            install(CheckerConfig::default());
            let labels = run(g);
            let report = uninstall().expect("checker installed above");
            check_labels(g, &labels)
                .map_err(|e| format!("sancheck: {gname}/{bname}: invalid labels: {e}"))?;
            if json {
                json_rows.push(format!(
                    "{{\"graph\":{},\"backend\":{},\"report\":{}}}",
                    escape(gname),
                    escape(bname),
                    report.to_json()
                ));
            } else if report.is_clean() {
                println!(
                    "ok   {gname:<18} {bname:<20} {} accesses, 0 hazards",
                    report.accesses
                );
            } else {
                println!(
                    "FAIL {gname:<18} {bname:<20} {} hazards:",
                    report.total_hazards()
                );
                print!("{}", report.render());
            }
            total_hazards += report.total_hazards();
            if !report.is_clean() {
                failed_runs += 1;
            }
        }
    }
    if json {
        println!("[{}]", json_rows.join(","));
    }
    if total_hazards > 0 {
        return Err(format!(
            "sancheck: {total_hazards} hazards across {failed_runs} runs"
        ));
    }
    if !json {
        println!(
            "sancheck: {} runs clean ({} graphs x {} backends)",
            graphs.len() * runs.len(),
            graphs.len(),
            runs.len()
        );
    }
    Ok(())
}

/// Stub when the checker is compiled out.
#[cfg(not(feature = "sancheck"))]
fn cmd_sancheck(_args: &[String]) -> Result<(), String> {
    Err(
        "sancheck: this binary was built without the `sancheck` feature \
         (rebuild with default features)"
            .into(),
    )
}

/// `nulpa check [--json] [--inject] [--root DIR]` — run the static
/// kernel effect verifier and the workspace invariant linter. Exits
/// non-zero on any finding; `--inject` adds the fault-injection
/// descriptors (the gate must then fail — that is its self-test).
#[cfg(feature = "check")]
fn cmd_check(args: &[String]) -> Result<(), String> {
    use nu_lpa::check::{register_injected, run_check};

    let json = args.iter().any(|a| a == "--json");
    let inject = args.iter().any(|a| a == "--inject");
    let root = match opt_value(args, "--root") {
        Some(r) => std::path::PathBuf::from(r),
        None => workspace_root()?,
    };
    let mut registry = nu_lpa::core::shipped_effects();
    if inject {
        register_injected(&mut registry);
    }
    let report = run_check(&root, &registry);
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if !report.is_clean() {
        return Err(format!(
            "check: {} findings across {} kernels / {} files",
            report.total_findings(),
            report.kernels_checked,
            report.files_scanned
        ));
    }
    Ok(())
}

/// Locate the workspace root by walking up from the current directory
/// until a `Cargo.toml` containing a `[workspace]` table is found.
#[cfg(feature = "check")]
fn workspace_root() -> Result<std::path::PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(
                "check: no workspace Cargo.toml above the current directory \
                 (pass --root <dir>)"
                    .into(),
            );
        }
    }
}

/// Stub when the static checker is compiled out.
#[cfg(not(feature = "check"))]
fn cmd_check(_args: &[String]) -> Result<(), String> {
    Err("check: this binary was built without the `check` feature \
         (rebuild with default features)"
        .into())
}
