//! # nu-lpa — facade crate
//!
//! Re-exports the whole ν-LPA reproduction workspace under one roof so
//! examples and downstream users can depend on a single crate.
//!
//! * [`graph`] — CSR graphs, generators, dataset stand-ins ([`nulpa_graph`]).
//! * [`simt`] — the SIMT/GPU execution-model simulator ([`nulpa_simt`]).
//! * [`hashtab`] — per-vertex open-addressing hashtables ([`nulpa_hashtab`]).
//! * [`core`] — the ν-LPA algorithm itself ([`nulpa_core`]).
//! * [`baselines`] — FLPA, NetworKit PLP, Gunrock LP, Louvain ([`nulpa_baselines`]).
//! * [`metrics`] — modularity, NMI, partition stats ([`nulpa_metrics`]).
//! * [`obs`] — structured tracing: sinks, histograms, JSONL/Perfetto
//!   exporters ([`nulpa_obs`]).
//! * [`sancheck`] — dynamic hazard checker for the SIMT execution model
//!   ([`nulpa_sancheck`]; present when the default `sancheck` feature is
//!   on).
//! * [`prof`] — cycle-attribution profiler: per-component cost
//!   breakdowns, occupancy timelines, roofline summaries and the perf
//!   gate ([`nulpa_prof`]; present when the default `prof` feature is
//!   on).
//! * [`telemetry`] — host-side telemetry: lock-free metrics registry,
//!   counting allocator, wall-clock phase spans, per-iteration
//!   convergence trajectories and the run-history ledger
//!   ([`nulpa_telemetry`]; present when the default `telemetry` feature
//!   is on).
//! * [`check`] — static kernel effect verifier + workspace invariant
//!   linter ([`nulpa_check`]; present when the default `check` feature
//!   is on).

#![forbid(unsafe_code)]

pub use nulpa_baselines as baselines;
#[cfg(feature = "check")]
pub use nulpa_check as check;
pub use nulpa_core as core;
pub use nulpa_graph as graph;
pub use nulpa_hashtab as hashtab;
pub use nulpa_metrics as metrics;
pub use nulpa_obs as obs;
#[cfg(feature = "prof")]
pub use nulpa_prof as prof;
#[cfg(feature = "sancheck")]
pub use nulpa_sancheck as sancheck;
pub use nulpa_simt as simt;
#[cfg(feature = "telemetry")]
pub use nulpa_telemetry as telemetry;
