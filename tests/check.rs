//! Integration tests for `nulpa check` — the static kernel effect
//! verifier and workspace invariant linter.
//!
//! Three claims are pinned here: the CLI gate is *clean* on the shipped
//! workspace, it is *non-vacuous* (a doctored effect declaration makes
//! it exit non-zero with exact attribution), and it is *sound where it
//! overlaps sancheck* — a static-clean verdict implies the dynamic
//! hazard checker also comes out clean on the built-in graph trio, for
//! every kernel the effect system describes.

#![cfg(feature = "check")]

use nu_lpa::check::{run_check, FindingKind};
use nu_lpa::obs::json;
use std::path::Path;
use std::process::Command;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn nulpa(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_nulpa"))
        .args(args)
        .current_dir(workspace_root())
        .output()
        .expect("run nulpa binary")
}

#[test]
fn cli_gate_is_clean_on_the_shipped_workspace() {
    let out = nulpa(&["check"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "nulpa check failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("check: clean"),
        "unexpected output: {stdout}"
    );
}

#[test]
fn cli_gate_exits_non_zero_on_doctored_declarations() {
    // --inject registers the fault descriptors: six violation classes
    // that a buggy kernel would have to declare. The gate must fail.
    let out = nulpa(&["check", "--inject"]);
    assert!(
        !out.status.success(),
        "nulpa check --inject unexpectedly passed — the gate is vacuous"
    );
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for kind in [
        "lane-write-race",
        "divergent-barrier",
        "unstaged-same-wave-read",
        "region-oob",
        "probe-budget-overrun",
        "immediate-write-escape",
    ] {
        assert!(stdout.contains(kind), "missing {kind} in:\n{stdout}");
    }
    // Exact attribution survives to the CLI surface: kernel name,
    // rendered address expression, and a concrete lane pair.
    assert!(stdout.contains("inject:lane-race"));
    assert!(stdout.contains("labels[j], j ∈ N(v)"));
    assert!(stdout.contains("lanes=(0,1)"));
}

#[test]
fn json_report_parses_and_matches_schema() {
    let out = nulpa(&["check", "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let v = json::parse(stdout.trim()).expect("valid JSON report");
    assert_eq!(v.get("total_findings").unwrap().as_u64(), Some(0));
    assert_eq!(v.get("kernels_checked").unwrap().as_u64(), Some(4));
    assert!(v.get("facts_checked").unwrap().as_u64().unwrap() > 50);
    assert!(v.get("files_scanned").unwrap().as_u64().unwrap() > 20);
    assert_eq!(v.get("findings").unwrap().as_arr().unwrap().len(), 0);
}

#[test]
fn json_report_carries_findings_under_injection() {
    let out = nulpa(&["check", "--json", "--inject"]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let v = json::parse(stdout.trim()).expect("valid JSON report");
    assert!(v.get("total_findings").unwrap().as_u64().unwrap() >= 6);
    let findings = v.get("findings").unwrap().as_arr().unwrap();
    assert!(findings.len() >= 6);
    // Every finding names a kernel, an address expression and a kind.
    for f in findings {
        assert!(f.get("kind").unwrap().as_str().is_some());
        assert!(!f.get("kernel").unwrap().as_str().unwrap().is_empty());
        assert!(!f.get("addr").unwrap().as_str().unwrap().is_empty());
    }
}

/// Static-clean ⇒ sancheck-clean: on the graphs where both checkers can
/// look at the same kernels, the static verdict must never be *weaker*
/// than the dynamic one. (The reverse is allowed — sancheck sees only
/// one schedule; the solver quantifies over all of them.)
#[cfg(feature = "sancheck")]
#[test]
fn static_clean_implies_sancheck_clean_on_the_trio() {
    use nu_lpa::core::{lpa_gpu, LpaConfig, SwapMode};
    use nu_lpa::graph::gen::{caveman_weighted, erdos_renyi, two_cliques_light_bridge};
    use nu_lpa::sancheck::{install, uninstall, CheckerConfig};
    use nu_lpa::simt::DeviceConfig;

    // Layer 1 + 2 must be clean first — this is the hypothesis.
    let registry = nu_lpa::core::shipped_effects();
    let rep = run_check(workspace_root(), &registry);
    assert!(
        rep.is_clean(),
        "static check not clean, cross-validation is moot:\n{}",
        rep.render()
    );
    assert_eq!(rep.count_of(FindingKind::LaneWriteRace), 0);

    // ... then the dynamic checker must agree on every trio graph, with
    // the cross-check revert kernel forced on so all three described
    // kernels actually launch.
    let graphs = [
        ("two-cliques-s6", two_cliques_light_bridge(6)),
        ("caveman-4x8", caveman_weighted(4, 8, 0.5)),
        ("erdos-renyi-256", erdos_renyi(256, 768, 42)),
    ];
    let cfg = LpaConfig::default()
        .with_device(DeviceConfig::tiny())
        .with_swap_mode(SwapMode::CrossCheck { every: 1 });
    for (name, g) in &graphs {
        install(CheckerConfig::default());
        let _ = lpa_gpu(g, &cfg);
        let report = uninstall().expect("checker installed above");
        assert!(
            report.is_clean(),
            "{name}: static-clean but sancheck found hazards:\n{}",
            report.render()
        );
    }
}
