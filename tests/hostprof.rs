//! Host-parallel profiler: neutrality and data-integrity tests.
//!
//! The observability contract of `lpa_native_hostprof` has two halves.
//! **Neutrality**: profiling must not change the algorithm — a profiled
//! run's `LpaResult` is bit-identical to the unprofiled run's on every
//! field, across thread counts, bucket modes, and scheduling modes
//! (picks are pure functions of block-frozen labels; the profiler only
//! changes *which thread* computes a pick and how cursors are claimed).
//! **Integrity**: when the recorder is compiled in (`telemetry` default
//! feature → `nulpa-core/hostprof`), the collected data must account
//! for exactly the work the run did — every candidate attributed to a
//! bucket, spans on every thread that worked, and repair statistics that
//! are identical at any thread count.

use nu_lpa::core::{lpa_native, lpa_native_hostprof, LpaConfig, LpaResult};
use nu_lpa::graph::gen::{caveman_weighted, erdos_renyi, two_cliques_light_bridge};
use nu_lpa::graph::Csr;

fn trio() -> Vec<(&'static str, Csr)> {
    vec![
        ("two-cliques-s6", two_cliques_light_bridge(6)),
        ("caveman-4x8", caveman_weighted(4, 8, 0.5)),
        ("erdos-renyi-256", erdos_renyi(256, 768, 42)),
    ]
}

fn assert_same_result(a: &LpaResult, b: &LpaResult, ctx: &str) {
    assert_eq!(a.labels, b.labels, "{ctx}: labels diverged");
    assert_eq!(a.iterations, b.iterations, "{ctx}: iterations diverged");
    assert_eq!(a.converged, b.converged, "{ctx}: converged diverged");
    assert_eq!(
        a.changed_per_iter, b.changed_per_iter,
        "{ctx}: dN series diverged"
    );
    assert_eq!(
        a.scanned_per_iter, b.scanned_per_iter,
        "{ctx}: scanned series diverged"
    );
    assert_eq!(a.stats, b.stats, "{ctx}: kernel stats diverged");
    assert_eq!(
        a.staged_collisions, b.staged_collisions,
        "{ctx}: staged collisions diverged"
    );
}

/// Profiled ≡ unprofiled on every `LpaResult` field, across the thread
/// ladder and both bucket modes.
#[test]
fn profiled_run_is_bit_identical_to_unprofiled() {
    for (name, g) in &trio() {
        for threads in [1usize, 2, 4] {
            for buckets in [true, false] {
                let mut cfg = LpaConfig::default().with_threads(threads);
                if !buckets {
                    cfg = cfg.with_buckets(None);
                }
                let plain = lpa_native(g, &cfg);
                let (profiled, _) = lpa_native_hostprof(g, &cfg);
                assert_same_result(
                    &plain,
                    &profiled,
                    &format!("{name} threads={threads} buckets={buckets}"),
                );
            }
        }
    }
}

/// Frontier (worklist) scheduling keeps the same contract.
#[test]
fn profiled_frontier_run_is_bit_identical() {
    for (name, g) in &trio() {
        for threads in [1usize, 2, 4] {
            let cfg = LpaConfig::default()
                .with_threads(threads)
                .with_frontier(true);
            let plain = lpa_native(g, &cfg);
            let (profiled, _) = lpa_native_hostprof(g, &cfg);
            assert_same_result(
                &plain,
                &profiled,
                &format!("{name} frontier threads={threads}"),
            );
        }
    }
}

/// The recorder only exists on the bucketed fast path: the legacy
/// per-vertex path returns no profile in any build.
#[test]
fn no_buckets_means_no_profile() {
    let g = caveman_weighted(4, 8, 0.5);
    let cfg = LpaConfig::default().with_buckets(None);
    let (_, prof) = lpa_native_hostprof(&g, &cfg);
    assert!(prof.is_none());
}

#[cfg(feature = "telemetry")]
mod data {
    //! Integrity of the collected data (needs the recorder compiled in,
    //! which the default `telemetry` feature provides transitively).

    use super::*;
    use nu_lpa::core::HostProfData;

    fn profile(g: &Csr, threads: usize) -> HostProfData {
        let cfg = LpaConfig::default().with_threads(threads);
        let (_, prof) = lpa_native_hostprof(g, &cfg);
        prof.expect("hostprof feature is on and buckets are the default")
    }

    #[test]
    fn every_candidate_is_attributed_to_a_bucket() {
        for (name, g) in &trio() {
            for threads in [1usize, 2, 4] {
                let data = profile(g, threads);
                assert_eq!(data.threads, threads, "{name}");
                let swept: u64 = data.iters.iter().map(|i| i.candidates).sum();
                let attributed: u64 = data.bucket_totals().iter().map(|b| b.vertices).sum();
                // The single-thread path and the claim-loop path both
                // count per-chunk work, so attribution is exact.
                assert_eq!(attributed, swept, "{name} threads={threads}");
                let edges: u64 = data.bucket_totals().iter().map(|b| b.edges).sum();
                assert!(edges > 0, "{name}: no edges attributed");
            }
        }
    }

    #[test]
    fn spans_cover_every_thread_and_commits_stay_on_the_lead() {
        for (name, g) in &trio() {
            let data = profile(g, 4);
            assert_eq!(data.per_thread.len(), 4, "{name}");
            for (tid, t) in data.per_thread.iter().enumerate() {
                assert!(
                    !t.spans.is_empty(),
                    "{name}: thread {tid} recorded no spans"
                );
                let commits = t
                    .spans
                    .iter()
                    .filter(|s| s.kind == nu_lpa::core::SpanKind::Commit)
                    .count();
                if tid == 0 {
                    assert!(commits > 0, "{name}: lead thread has no commit spans");
                } else {
                    assert_eq!(commits, 0, "{name}: worker {tid} recorded commit spans");
                }
                // span timeline is monotone and busy time sums the durations
                let mut last = 0u64;
                let mut busy = 0u64;
                for s in &t.spans {
                    assert!(
                        s.start_ns >= last,
                        "{name}: thread {tid} spans out of order"
                    );
                    last = s.start_ns;
                    busy += s.dur_ns;
                }
                assert_eq!(busy, t.busy_ns, "{name}: thread {tid} busy_ns mismatch");
            }
        }
    }

    /// The commit schedule — and therefore every repair statistic — is a
    /// pure function of the candidate order, so profiles taken at
    /// different thread counts must agree on all deterministic fields.
    #[test]
    fn repair_statistics_are_thread_count_invariant() {
        for (name, g) in &trio() {
            let base = profile(g, 1);
            assert!(!base.iters.is_empty(), "{name}: no iterations recorded");
            for threads in [2usize, 4] {
                let other = profile(g, threads);
                assert_eq!(
                    base.iters.len(),
                    other.iters.len(),
                    "{name}: iteration count diverged at {threads} threads"
                );
                for (a, b) in base.iters.iter().zip(other.iters.iter()) {
                    assert!(
                        a.same_schedule(b),
                        "{name}: repair schedule diverged at {threads} threads: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    /// ΔN must be reflected exactly in the per-iteration `committed`
    /// counts — the profiler sees the same moves the result reports.
    #[test]
    fn committed_moves_match_the_result_series() {
        for (name, g) in &trio() {
            let cfg = LpaConfig::default().with_threads(2);
            let (result, prof) = lpa_native_hostprof(g, &cfg);
            let data = prof.unwrap();
            let committed: Vec<u64> = data.iters.iter().map(|i| i.committed).collect();
            let dn: Vec<u64> = result.changed_per_iter.iter().map(|&c| c as u64).collect();
            // the result series may carry a trailing zero-change iteration
            // that never entered the fast path's commit loop
            assert!(
                dn.starts_with(&committed) || dn == committed,
                "{name}: committed {committed:?} vs dN {dn:?}"
            );
        }
    }
}
