//! Integration tests for the extensions: PuLP partitioning, Dynamic
//! Frontier LPA, Leiden, and the LP family, exercised through the public
//! facade on dataset stand-ins.

use nu_lpa::baselines::{
    communities_connected, copra, labelrank, leiden, slpa, CopraConfig, LabelRankConfig,
    LeidenConfig, SlpaConfig,
};
use nu_lpa::core::{lpa_dynamic, lpa_native, pulp_partition, EdgeBatch, LpaConfig, PulpConfig};
use nu_lpa::graph::datasets::{spec_by_name, TEST_SCALE};
use nu_lpa::graph::gen::web_crawl;
use nu_lpa::metrics::{check_labels, cut_fraction, imbalance, modularity};

#[test]
fn pulp_partitions_every_dataset_category() {
    for name in ["uk-2002", "com-LiveJournal", "asia_osm", "kmer_A2a"] {
        let d = spec_by_name(name).unwrap().generate(TEST_SCALE);
        let g = &d.graph;
        let k = 4;
        let r = pulp_partition(
            g,
            &PulpConfig {
                num_parts: k,
                ..Default::default()
            },
        );
        assert_eq!(r.parts.len(), g.num_vertices(), "{name}");
        assert!(imbalance(&r.parts, k) <= 1.10, "{name}");
        assert!(cut_fraction(g, &r.parts) <= 1.0, "{name}");
    }
}

#[test]
fn dynamic_updates_track_a_growing_crawl() {
    let g0 = web_crawl(3000, 6, 0.1, 13);
    let cfg = LpaConfig::default();
    let base = lpa_native(&g0, &cfg);
    let base_q = modularity(&g0, &base.labels);

    // three growth batches
    let mut g = g0;
    let mut labels = base.labels;
    for round in 0..3u32 {
        let batch = EdgeBatch {
            insertions: (0..20)
                .map(|i| {
                    let u = (i * 131 + round * 977) % 3000;
                    let v = (i * 577 + round * 311 + 1) % 3000;
                    (u, v, 1.0)
                })
                .filter(|&(u, v, _)| u != v)
                .collect(),
            deletions: vec![],
        };
        let (g_new, r) = lpa_dynamic(&g, &labels, &batch, &cfg);
        check_labels(&g_new, &r.labels).unwrap();
        let q = modularity(&g_new, &r.labels);
        // random inter-edges can only dilute structure mildly per batch
        assert!(q > base_q - 0.1, "round {round}: Q = {q} (base {base_q})");
        g = g_new;
        labels = r.labels;
    }
}

#[test]
fn leiden_guarantee_on_datasets() {
    for name in ["uk-2002", "asia_osm"] {
        let d = spec_by_name(name).unwrap().generate(TEST_SCALE);
        let r = leiden(&d.graph, &LeidenConfig::default());
        assert!(
            communities_connected(&d.graph, &r.labels),
            "{name}: disconnected community from Leiden"
        );
    }
}

#[test]
fn lp_family_quality_band_on_social_standin() {
    let d = spec_by_name("com-LiveJournal")
        .unwrap()
        .generate(TEST_SCALE * 4.0);
    let g = &d.graph;
    let q_lpa = modularity(g, &lpa_native(g, &LpaConfig::default()).labels);
    let q_slpa = modularity(g, &slpa(g, &SlpaConfig::default()).labels);
    let q_copra = modularity(g, &copra(g, &CopraConfig::default()).labels);
    let q_lr = modularity(g, &labelrank(g, &LabelRankConfig::default()).labels);
    // all four find real structure on a social stand-in
    for (name, q) in [
        ("lpa", q_lpa),
        ("slpa", q_slpa),
        ("copra", q_copra),
        ("labelrank", q_lr),
    ] {
        assert!(q > 0.3, "{name}: Q = {q}");
    }
}

#[test]
fn partition_respects_tight_and_loose_balance() {
    let d = spec_by_name("europe_osm").unwrap().generate(TEST_SCALE);
    let g = &d.graph;
    let tight = pulp_partition(
        g,
        &PulpConfig {
            num_parts: 6,
            balance: 1.01,
            ..Default::default()
        },
    );
    let loose = pulp_partition(
        g,
        &PulpConfig {
            num_parts: 6,
            balance: 1.5,
            ..Default::default()
        },
    );
    assert!(imbalance(&tight.parts, 6) <= 1.02 + 0.05);
    // looser balance can only help (or tie) the cut
    assert!(cut_fraction(g, &loose.parts) <= cut_fraction(g, &tight.parts) + 0.05);
}
