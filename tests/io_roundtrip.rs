//! Graph I/O through the public facade: serialize a generated dataset,
//! read it back, and run the full pipeline on the reloaded graph.

use nu_lpa::core::{lpa_native, LpaConfig};
use nu_lpa::graph::gen::{planted_partition, web_crawl};
use nu_lpa::graph::io::{read_edge_list, read_matrix_market, write_edge_list, write_matrix_market};
use nu_lpa::metrics::modularity;
use std::io::Cursor;

#[test]
fn matrix_market_roundtrip_preserves_pipeline_results() {
    let g = web_crawl(800, 5, 0.1, 7);
    let mut buf = Vec::new();
    write_matrix_market(&g, &mut buf).unwrap();
    let g2 = read_matrix_market(Cursor::new(&buf)).unwrap();
    assert_eq!(g, g2);

    let q1 = modularity(&g, &lpa_native(&g, &LpaConfig::default()).labels);
    let q2 = modularity(&g2, &lpa_native(&g2, &LpaConfig::default()).labels);
    assert_eq!(q1, q2);
}

#[test]
fn edge_list_roundtrip() {
    let pp = planted_partition(&[50, 50], 8.0, 1.0, 1);
    let mut buf = Vec::new();
    write_edge_list(&pp.graph, &mut buf).unwrap();
    let g2 = read_edge_list(Cursor::new(&buf), Some(pp.graph.num_vertices()), false).unwrap();
    assert_eq!(pp.graph, g2);
}

#[test]
fn mtx_header_variants_parse() {
    let sym = "%%MatrixMarket matrix coordinate pattern symmetric\n4 4 3\n2 1\n3 2\n4 3\n";
    let g = read_matrix_market(Cursor::new(sym)).unwrap();
    assert_eq!(g.num_vertices(), 4);
    assert_eq!(g.num_edges(), 6);

    let gen = "%%MatrixMarket matrix coordinate integer general\n3 3 2\n1 2 5\n3 1 2\n";
    let g = read_matrix_market(Cursor::new(gen)).unwrap();
    assert_eq!(g.edge_weight(0, 1), Some(5.0));
    assert_eq!(g.edge_weight(0, 2), Some(2.0)); // symmetrized
}

#[test]
fn loaded_graph_runs_all_backends() {
    let txt = "# toy communities\n0 1\n1 2\n0 2\n3 4\n4 5\n3 5\n2 3 0.25\n";
    let g = read_edge_list(Cursor::new(txt), None, true).unwrap();
    let r = lpa_native(&g, &LpaConfig::default());
    assert_eq!(r.labels[0], r.labels[1]);
    assert_eq!(r.labels[1], r.labels[2]);
    assert_eq!(r.labels[3], r.labels[4]);
    assert_ne!(r.labels[0], r.labels[3]);
}
