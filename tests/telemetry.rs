//! Telemetry neutrality and cross-backend convergence agreement.
//!
//! The telemetry layer must be a pure observer: attaching a
//! [`ConvergenceRecorder`] (or no observer at all, via the `_observed`
//! entry points with a [`NullObserver`]) must not change a single label,
//! iteration count, or ΔN of any backend. And the convergence telemetry
//! itself must agree across backends where the algorithm does: all three
//! land on the same final modularity on the community-structured
//! built-in graphs (exact trajectories legitimately differ — seq scans
//! scrambled vertex order, native scans hashtable slots, the simulator
//! buffers label visibility per wave).

#![cfg(feature = "telemetry")]

use nu_lpa::core::{
    lpa_gpu, lpa_gpu_observed, lpa_native, lpa_native_observed, lpa_seq, lpa_seq_observed,
    LpaConfig, LpaResult, NullObserver,
};
use nu_lpa::graph::gen::{caveman_weighted, erdos_renyi, two_cliques_light_bridge};
use nu_lpa::graph::Csr;
use nu_lpa::metrics::{community_count, modularity};
use nu_lpa::obs::NullSink;
use nu_lpa::telemetry::ConvergenceRecorder;

fn trio() -> Vec<(String, Csr)> {
    vec![
        ("two-cliques-s6".into(), two_cliques_light_bridge(6)),
        ("caveman-4x8".into(), caveman_weighted(4, 8, 0.5)),
        ("erdos-renyi-256".into(), erdos_renyi(256, 768, 42)),
    ]
}

fn run_observed(backend: &str, g: &Csr, obs: &mut dyn nu_lpa::core::IterObserver) -> LpaResult {
    let cfg = LpaConfig::default();
    let mut sink = NullSink;
    match backend {
        "seq" => lpa_seq_observed(g, &cfg, &mut sink, obs),
        "native" => lpa_native_observed(g, &cfg, &mut sink, obs),
        "gpu" => lpa_gpu_observed(g, &cfg, &mut sink, obs),
        _ => unreachable!(),
    }
}

fn run_plain(backend: &str, g: &Csr) -> LpaResult {
    let cfg = LpaConfig::default();
    match backend {
        "seq" => lpa_seq(g, &cfg),
        "native" => lpa_native(g, &cfg),
        "gpu" => lpa_gpu(g, &cfg),
        _ => unreachable!(),
    }
}

/// Observers are strictly read-only: plain, null-observed and
/// recorder-observed runs produce identical results.
#[test]
fn observers_do_not_perturb_any_backend() {
    for (gname, g) in &trio() {
        for backend in ["seq", "native", "gpu"] {
            let plain = run_plain(backend, g);
            let nulled = run_observed(backend, g, &mut NullObserver);
            let mut rec = ConvergenceRecorder::new(g);
            let recorded = run_observed(backend, g, &mut rec);
            for (tag, r) in [("null", &nulled), ("recorder", &recorded)] {
                assert_eq!(r.labels, plain.labels, "{gname}/{backend}/{tag}: labels");
                assert_eq!(
                    r.iterations, plain.iterations,
                    "{gname}/{backend}/{tag}: iterations"
                );
                assert_eq!(
                    r.changed_per_iter, plain.changed_per_iter,
                    "{gname}/{backend}/{tag}: dN series"
                );
                assert_eq!(
                    r.converged, plain.converged,
                    "{gname}/{backend}/{tag}: converged"
                );
            }
        }
    }
}

/// Each backend's recorded trajectory is internally consistent: the
/// observer's ΔN series matches the backend's own record, one sample per
/// iteration, and the incrementally maintained modularity matches a
/// from-scratch recomputation on the final labels.
#[test]
fn trajectories_are_consistent_per_backend() {
    for (gname, g) in &trio() {
        for backend in ["seq", "native", "gpu"] {
            let mut rec = ConvergenceRecorder::new(g);
            let r = run_observed(backend, g, &mut rec);
            assert_eq!(
                rec.samples.len(),
                r.iterations as usize,
                "{gname}/{backend}: one sample per iteration"
            );
            let dn: Vec<usize> = rec.samples.iter().map(|s| s.delta_n).collect();
            assert_eq!(dn, r.changed_per_iter, "{gname}/{backend}: dN trajectory");
            let q = modularity(g, &r.labels);
            assert!(
                (rec.final_modularity() - q).abs() < 1e-9,
                "{gname}/{backend}: incremental Q {} vs recomputed {q}",
                rec.final_modularity()
            );
            assert_eq!(
                rec.samples.last().unwrap().communities,
                community_count(&r.labels),
                "{gname}/{backend}: final community count"
            );
            for s in &rec.samples {
                assert!(
                    s.active_fraction >= 0.0 && s.active_fraction <= 1.0,
                    "{gname}/{backend}: active fraction in [0,1]"
                );
            }
        }
    }
}

/// On the community-structured graphs all three backends converge to the
/// same partition quality: identical final modularity and community
/// count (the ER graph has no structure to agree on — backends find
/// different near-zero-Q partitions there, checked above for internal
/// consistency only).
#[test]
fn backends_agree_on_structured_graphs() {
    for (gname, g) in [
        ("two-cliques-s6", two_cliques_light_bridge(6)),
        ("caveman-4x8", caveman_weighted(4, 8, 0.5)),
    ] {
        let mut qs = Vec::new();
        let mut comms = Vec::new();
        for backend in ["seq", "native", "gpu"] {
            let mut rec = ConvergenceRecorder::new(&g);
            let r = run_observed(backend, &g, &mut rec);
            assert!(r.converged, "{gname}/{backend} should converge");
            qs.push(rec.final_modularity());
            comms.push(r.num_communities());
        }
        assert!(
            qs.iter().all(|q| (q - qs[0]).abs() < 1e-12),
            "{gname}: final modularity diverged across backends: {qs:?}"
        );
        assert!(
            comms.iter().all(|c| *c == comms[0]),
            "{gname}: community count diverged across backends: {comms:?}"
        );
    }
}

/// The `is_enabled` gate keeps the unobserved path cheap: a
/// null-observed run must not be wildly slower than a plain run. The
/// bound is deliberately loose (3× on the median of several runs) —
/// this is a tripwire for accidentally snapshotting labels every
/// iteration on the unobserved path, not a micro-benchmark.
#[test]
fn null_observer_overhead_is_bounded() {
    let g = erdos_renyi(512, 2048, 7);
    let cfg = LpaConfig::default();
    let median = |mut f: Box<dyn FnMut()>| {
        let mut times: Vec<std::time::Duration> = (0..5)
            .map(|_| {
                let t0 = std::time::Instant::now();
                f();
                t0.elapsed()
            })
            .collect();
        times.sort();
        times[2]
    };
    let plain = median(Box::new(|| {
        std::hint::black_box(lpa_seq(&g, &cfg));
    }));
    let nulled = median(Box::new(|| {
        std::hint::black_box(lpa_seq_observed(&g, &cfg, &mut NullSink, &mut NullObserver));
    }));
    assert!(
        nulled <= plain * 3 + std::time::Duration::from_millis(5),
        "null-observed run {nulled:?} vs plain {plain:?}: observer gate is not cheap"
    );
}
