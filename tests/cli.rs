//! End-to-end tests of the `nulpa` command-line tool.

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_nulpa");

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("nulpa-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn two_cliques_edge_list() -> String {
    // two triangles joined by a light bridge
    "0 1\n1 2\n0 2\n3 4\n4 5\n3 5\n2 3 0.2\n".to_string()
}

#[test]
fn help_exits_zero() {
    let out = Command::new(BIN).arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = Command::new(BIN).arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn stats_on_edge_list_file() {
    let path = tmp("stats.txt");
    std::fs::write(&path, two_cliques_edge_list()).unwrap();
    let out = Command::new(BIN).arg("stats").arg(&path).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("vertices:     6"), "{text}");
    assert!(text.contains("symmetric:    true"), "{text}");
}

#[test]
fn detect_finds_two_communities() {
    let path = tmp("detect.txt");
    std::fs::write(&path, two_cliques_edge_list()).unwrap();
    let out = Command::new(BIN)
        .args(["detect", path.to_str().unwrap(), "--quality"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let labels: Vec<u32> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    assert_eq!(labels.len(), 6);
    assert_eq!(labels[0], labels[1]);
    assert_eq!(labels[0], labels[2]);
    assert_eq!(labels[3], labels[4]);
    assert_ne!(labels[0], labels[3]);
    assert!(String::from_utf8_lossy(&out.stderr).contains("2 communities"));
}

#[test]
fn detect_all_methods_run() {
    let path = tmp("methods.txt");
    std::fs::write(&path, two_cliques_edge_list()).unwrap();
    for method in [
        "nu-lpa",
        "nu-lpa-sim",
        "flpa",
        "networkit",
        "gunrock",
        "louvain",
        "leiden",
        "gve-lpa",
    ] {
        let out = Command::new(BIN)
            .args(["detect", path.to_str().unwrap(), "--method", method])
            .output()
            .unwrap();
        assert!(out.status.success(), "{method} failed");
        let n = String::from_utf8_lossy(&out.stdout).lines().count();
        assert_eq!(n, 6, "{method} wrote {n} labels");
    }
}

#[test]
fn detect_reads_stdin() {
    let mut child = Command::new(BIN)
        .args(["detect", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(two_cliques_edge_list().as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).lines().count(), 6);
}

#[test]
fn partition_balances() {
    let path = tmp("part.txt");
    // a ring of 16 vertices
    let mut s = String::new();
    for i in 0..16 {
        s.push_str(&format!("{} {}\n", i, (i + 1) % 16));
    }
    std::fs::write(&path, s).unwrap();
    let out = Command::new(BIN)
        .args(["partition", path.to_str().unwrap(), "-k", "4"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let parts: Vec<u32> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    assert_eq!(parts.len(), 16);
    assert!(parts.iter().all(|&p| p < 4));
}

#[test]
fn generate_pipes_into_detect() {
    let gpath = tmp("gen.txt");
    let out = Command::new(BIN)
        .args([
            "generate",
            "asia_osm",
            "--scale",
            "0.00002",
            "--output",
            gpath.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = Command::new(BIN)
        .args([
            "detect",
            gpath.to_str().unwrap(),
            "--method",
            "louvain",
            "--quality",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("modularity"));
}

#[test]
fn coarsen_shrinks_graph() {
    let path = tmp("coarsen-in.txt");
    // ring of 64 so coarsening has room to shrink
    let mut s = String::new();
    for i in 0..64 {
        s.push_str(&format!("{} {}\n", i, (i + 1) % 64));
    }
    std::fs::write(&path, s).unwrap();
    let out = Command::new(BIN)
        .args(["coarsen", path.to_str().unwrap(), "--target", "8"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("levels"), "{stderr}");
    // the coarsest edge list should be non-empty and smaller than input
    let lines = String::from_utf8_lossy(&out.stdout).lines().count();
    assert!(lines > 1 && lines < 129, "{lines}");
}

#[test]
fn predict_ranks_missing_clique_edge() {
    let path = tmp("predict-in.txt");
    // two 4-cliques, one missing edge (1-2) in the first
    let txt = "0 1\n0 2\n0 3\n1 3\n2 3\n4 5\n4 6\n4 7\n5 6\n5 7\n6 7\n3 4 0.2\n";
    std::fs::write(&path, txt).unwrap();
    let out = Command::new(BIN)
        .args(["predict", path.to_str().unwrap(), "-k", "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let top = String::from_utf8_lossy(&out.stdout);
    assert!(top.starts_with("1 2 "), "{top}");
}

#[test]
fn inspect_reports_top_communities() {
    let path = tmp("inspect-in.txt");
    std::fs::write(&path, two_cliques_edge_list()).unwrap();
    let out = Command::new(BIN)
        .args(["inspect", path.to_str().unwrap(), "--top", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 communities"), "{text}");
    assert!(text.contains("density"), "{text}");
}

/// `stats --write-baseline` → `stats --check` round-trips clean, and the
/// gate demonstrably fails when the baseline claims 2% more modularity
/// than the backends deliver (an injected quality regression).
#[cfg(feature = "telemetry")]
#[test]
fn stats_quality_gate_passes_clean_and_fails_injected_regression() {
    let base = tmp("gate-baseline.json");
    let out = Command::new(BIN)
        .args(["stats", "--write-baseline", base.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = Command::new(BIN)
        .args(["stats", "--check", base.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "clean gate should pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("quality gate: ok"));

    // Inject the regression: bump every baseline modularity by 2% so the
    // (deterministic) current runs all read as a >1% quality drop.
    let text = std::fs::read_to_string(&base).unwrap();
    let mut doctored = String::new();
    let mut rest = text.as_str();
    const KEY: &str = "\"modularity\":";
    while let Some(i) = rest.find(KEY) {
        let (head, tail) = rest.split_at(i + KEY.len());
        doctored.push_str(head);
        let end = tail.find([',', '}']).expect("number terminates");
        let q: f64 = tail[..end].trim().parse().expect("modularity parses");
        doctored.push_str(&format!("{}", q * 1.02));
        rest = &tail[end..];
    }
    doctored.push_str(rest);
    assert_ne!(doctored, text, "injection must change the baseline");
    let bad = tmp("gate-baseline-doctored.json");
    std::fs::write(&bad, doctored).unwrap();

    let out = Command::new(BIN)
        .args(["stats", "--check", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "doctored gate must fail: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("modularity"), "{err}");
    assert!(err.contains("dropped"), "{err}");
}

/// `stats --json` emits one parseable object with per-run trajectories.
#[cfg(feature = "telemetry")]
#[test]
fn stats_json_reports_all_backends() {
    let out = Command::new(BIN)
        .args(["stats", "--json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let doc = nu_lpa::obs::json::parse(text.trim()).expect("stats --json parses");
    let runs = doc.get("runs").unwrap().as_arr().unwrap();
    assert_eq!(
        runs.len(),
        21,
        "3 graphs x 7 backends (dense + frontier + no-bucket native)"
    );
    for run in runs {
        assert!(!run.get("trajectory").unwrap().as_arr().unwrap().is_empty());
        assert!(run.get("modularity").unwrap().as_f64().is_some());
        // the binary installs the counting allocator, so peak heap is live
        assert!(run.get("peak_heap_bytes").unwrap().as_u64().unwrap() > 0);
    }
    assert!(doc.get("meta").unwrap().get("hw_threads").is_some());
}

/// `trace --json` emits a parseable summary; a garbage trace file exits
/// non-zero in both human and JSON modes.
#[test]
fn trace_json_and_parse_failure_exit() {
    let gpath = tmp("trace-json-in.txt");
    std::fs::write(&gpath, two_cliques_edge_list()).unwrap();
    let tpath = tmp("trace-json.trace");
    let out = Command::new(BIN)
        .args([
            "detect",
            gpath.to_str().unwrap(),
            "--method",
            "nu-lpa-sim",
            "--trace",
            tpath.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = Command::new(BIN)
        .args(["trace", tpath.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let doc = nu_lpa::obs::json::parse(text.trim()).expect("trace --json parses");
    assert!(doc.get("spans").is_some());
    assert!(doc.get("end_ts").unwrap().as_u64().is_some());

    let bad = tmp("trace-bad.json");
    std::fs::write(&bad, "this is not a trace\n").unwrap();
    for args in [
        vec!["trace", bad.to_str().unwrap()],
        vec!["trace", bad.to_str().unwrap(), "--json"],
    ] {
        let out = Command::new(BIN).args(&args).output().unwrap();
        assert!(!out.status.success(), "garbage trace must exit non-zero");
    }
}

#[test]
fn output_file_written() {
    let path = tmp("outfile-in.txt");
    let lpath = tmp("outfile-labels.txt");
    std::fs::write(&path, two_cliques_edge_list()).unwrap();
    let out = Command::new(BIN)
        .args([
            "detect",
            path.to_str().unwrap(),
            "--output",
            lpath.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let labels = std::fs::read_to_string(&lpath).unwrap();
    assert_eq!(labels.lines().count(), 6);
}
