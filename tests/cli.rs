//! End-to-end tests of the `nulpa` command-line tool.

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_nulpa");

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("nulpa-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn two_cliques_edge_list() -> String {
    // two triangles joined by a light bridge
    "0 1\n1 2\n0 2\n3 4\n4 5\n3 5\n2 3 0.2\n".to_string()
}

#[test]
fn help_exits_zero() {
    let out = Command::new(BIN).arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = Command::new(BIN).arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn stats_on_edge_list_file() {
    let path = tmp("stats.txt");
    std::fs::write(&path, two_cliques_edge_list()).unwrap();
    let out = Command::new(BIN).arg("stats").arg(&path).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("vertices:     6"), "{text}");
    assert!(text.contains("symmetric:    true"), "{text}");
}

#[test]
fn detect_finds_two_communities() {
    let path = tmp("detect.txt");
    std::fs::write(&path, two_cliques_edge_list()).unwrap();
    let out = Command::new(BIN)
        .args(["detect", path.to_str().unwrap(), "--quality"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let labels: Vec<u32> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    assert_eq!(labels.len(), 6);
    assert_eq!(labels[0], labels[1]);
    assert_eq!(labels[0], labels[2]);
    assert_eq!(labels[3], labels[4]);
    assert_ne!(labels[0], labels[3]);
    assert!(String::from_utf8_lossy(&out.stderr).contains("2 communities"));
}

#[test]
fn detect_all_methods_run() {
    let path = tmp("methods.txt");
    std::fs::write(&path, two_cliques_edge_list()).unwrap();
    for method in [
        "nu-lpa",
        "nu-lpa-sim",
        "flpa",
        "networkit",
        "gunrock",
        "louvain",
        "leiden",
        "gve-lpa",
    ] {
        let out = Command::new(BIN)
            .args(["detect", path.to_str().unwrap(), "--method", method])
            .output()
            .unwrap();
        assert!(out.status.success(), "{method} failed");
        let n = String::from_utf8_lossy(&out.stdout).lines().count();
        assert_eq!(n, 6, "{method} wrote {n} labels");
    }
}

#[test]
fn detect_reads_stdin() {
    let mut child = Command::new(BIN)
        .args(["detect", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(two_cliques_edge_list().as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).lines().count(), 6);
}

#[test]
fn partition_balances() {
    let path = tmp("part.txt");
    // a ring of 16 vertices
    let mut s = String::new();
    for i in 0..16 {
        s.push_str(&format!("{} {}\n", i, (i + 1) % 16));
    }
    std::fs::write(&path, s).unwrap();
    let out = Command::new(BIN)
        .args(["partition", path.to_str().unwrap(), "-k", "4"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let parts: Vec<u32> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    assert_eq!(parts.len(), 16);
    assert!(parts.iter().all(|&p| p < 4));
}

#[test]
fn generate_pipes_into_detect() {
    let gpath = tmp("gen.txt");
    let out = Command::new(BIN)
        .args([
            "generate",
            "asia_osm",
            "--scale",
            "0.00002",
            "--output",
            gpath.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = Command::new(BIN)
        .args([
            "detect",
            gpath.to_str().unwrap(),
            "--method",
            "louvain",
            "--quality",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("modularity"));
}

#[test]
fn coarsen_shrinks_graph() {
    let path = tmp("coarsen-in.txt");
    // ring of 64 so coarsening has room to shrink
    let mut s = String::new();
    for i in 0..64 {
        s.push_str(&format!("{} {}\n", i, (i + 1) % 64));
    }
    std::fs::write(&path, s).unwrap();
    let out = Command::new(BIN)
        .args(["coarsen", path.to_str().unwrap(), "--target", "8"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("levels"), "{stderr}");
    // the coarsest edge list should be non-empty and smaller than input
    let lines = String::from_utf8_lossy(&out.stdout).lines().count();
    assert!(lines > 1 && lines < 129, "{lines}");
}

#[test]
fn predict_ranks_missing_clique_edge() {
    let path = tmp("predict-in.txt");
    // two 4-cliques, one missing edge (1-2) in the first
    let txt = "0 1\n0 2\n0 3\n1 3\n2 3\n4 5\n4 6\n4 7\n5 6\n5 7\n6 7\n3 4 0.2\n";
    std::fs::write(&path, txt).unwrap();
    let out = Command::new(BIN)
        .args(["predict", path.to_str().unwrap(), "-k", "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let top = String::from_utf8_lossy(&out.stdout);
    assert!(top.starts_with("1 2 "), "{top}");
}

#[test]
fn inspect_reports_top_communities() {
    let path = tmp("inspect-in.txt");
    std::fs::write(&path, two_cliques_edge_list()).unwrap();
    let out = Command::new(BIN)
        .args(["inspect", path.to_str().unwrap(), "--top", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 communities"), "{text}");
    assert!(text.contains("density"), "{text}");
}

#[test]
fn output_file_written() {
    let path = tmp("outfile-in.txt");
    let lpath = tmp("outfile-labels.txt");
    std::fs::write(&path, two_cliques_edge_list()).unwrap();
    let out = Command::new(BIN)
        .args([
            "detect",
            path.to_str().unwrap(),
            "--output",
            lpath.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let labels = std::fs::read_to_string(&lpath).unwrap();
    assert_eq!(labels.lines().count(), 6);
}
