//! Conservation of attributed cycles (profiler integration).
//!
//! For every kernel launched across a matrix of probe strategy ×
//! swap-mitigation mode × device × host thread count, the sum of the
//! per-component attributed cycles must equal the untagged `KernelStats`
//! totals *exactly* — the profiler may never invent or leak a cycle.
//! This is the tentpole invariant of the attribution layer: every charge
//! site tags exactly one component for exactly the cycles it charges.

#![cfg(feature = "prof")]

use nu_lpa::core::{lpa_gpu_traced, LpaConfig, SwapMode};
use nu_lpa::graph::gen::{caveman_weighted, two_cliques_light_bridge};
use nu_lpa::hashtab::ProbeStrategy;
use nu_lpa::prof::{Profile, ProfileSink};
use nu_lpa::simt::DeviceConfig;

/// Run one configuration under the profiler and check conservation.
fn check(cfg: &LpaConfig, label: &str) {
    let g = caveman_weighted(3, 9, 0.4);
    let mut sink = ProfileSink::new();
    let result = lpa_gpu_traced(&g, cfg, &mut sink);
    let profile = Profile::build(
        "caveman-3x9",
        label,
        cfg.device.sm_count,
        sink,
        result.iterations as u64,
        result.converged,
    );
    profile
        .verify(&result.stats)
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    assert!(profile.totals.sim_cycles > 0, "{label}: empty profile");
}

#[test]
fn conservation_across_probe_swap_device_thread_matrix() {
    let swaps = [
        SwapMode::Off,
        SwapMode::CrossCheck { every: 1 },
        SwapMode::PickLess { every: 2 },
        SwapMode::Hybrid {
            cc_every: 2,
            pl_every: 3,
        },
    ];
    for probe in ProbeStrategy::all() {
        for swap in swaps {
            for device in [DeviceConfig::tiny(), DeviceConfig::a100()] {
                for threads in [1usize, 4] {
                    let cfg = LpaConfig::default()
                        .with_probe(probe)
                        .with_swap_mode(swap)
                        .with_device(device)
                        .with_threads(threads);
                    let label = format!(
                        "{}/{:?}/{}/t{}",
                        probe.label(),
                        swap,
                        device.preset_name(),
                        threads
                    );
                    check(&cfg, &label);
                }
            }
        }
    }
}

#[test]
fn conservation_with_shared_tables_and_f64() {
    use nu_lpa::core::ValueType;
    for threads in [1usize, 4] {
        // shared tables need an SM with enough shared memory to keep a
        // whole block resident, so this ablation runs on the A100 preset
        let cfg = LpaConfig::default()
            .with_shared_tables(true)
            .with_threads(threads);
        check(&cfg, &format!("shared-tables/t{threads}"));
        let cfg = LpaConfig::default()
            .with_value_type(ValueType::F64)
            .with_threads(threads);
        check(&cfg, &format!("f64/t{threads}"));
    }
}

/// The attribution itself must be deterministic: the same run at 1 and 4
/// host threads produces bit-identical component totals, not just
/// bit-identical labels.
#[test]
fn attribution_is_thread_count_invariant() {
    let g = two_cliques_light_bridge(6);
    let profile_at = |threads: usize| {
        let cfg = LpaConfig::default()
            .with_device(DeviceConfig::tiny())
            .with_threads(threads);
        let mut sink = ProfileSink::new();
        let result = lpa_gpu_traced(&g, &cfg, &mut sink);
        let p = Profile::build(
            "two-cliques",
            "tiny",
            cfg.device.sm_count,
            sink,
            result.iterations as u64,
            result.converged,
        );
        p.verify(&result.stats).expect("conserved");
        p
    };
    let p1 = profile_at(1);
    let p4 = profile_at(4);
    assert_eq!(p1.totals.comp, p4.totals.comp);
    assert_eq!(p1.totals.sim_cycles, p4.totals.sim_cycles);
    assert_eq!(p1.totals.imbalance_cycles, p4.totals.imbalance_cycles);
    assert_eq!(p1.totals.stall_cycles, p4.totals.stall_cycles);
    assert_eq!(p1.kernels.len(), p4.kernels.len());
}
