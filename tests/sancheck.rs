//! Fault-injection tests for the dynamic hazard checker (`nulpa-sancheck`).
//!
//! Each test installs the checker, drives the real SIMT scheduler (tiny
//! device: warp 4, block 8, 64 resident threads) into a specific hazard,
//! and asserts both the hazard class and its (wave, warp, lane)
//! attribution. The checker is process-global, so every test in this
//! binary serialises on one lock. Shipped backends must come out clean,
//! and an installed checker must never change what a backend computes.

#![cfg(feature = "sancheck")]

use nu_lpa::baselines::{gunrock_lp, GunrockConfig};
use nu_lpa::core::{lpa_gpu, lpa_native, LpaConfig, SwapMode};
use nu_lpa::graph::gen::{caveman_weighted, erdos_renyi, two_cliques_light_bridge};
use nu_lpa::sancheck::{hooks, install, uninstall, CheckerConfig, HazardKind, SancheckReport};
use nu_lpa::simt::{CostModel, DeferredStore, DeviceConfig, WaveScheduler};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

/// Serialise tests (the checker is process-global) and recover from
/// poisoning (the out-of-bounds test panics on purpose).
fn locked() -> MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    uninstall(); // drop any checker a panicked test left behind
    guard
}

fn sched() -> WaveScheduler {
    WaveScheduler::new(DeviceConfig::tiny(), CostModel::default_gpu())
}

/// Run `f` under a fresh checker and return the report.
fn checked<F: FnOnce()>(f: F) -> SancheckReport {
    install(CheckerConfig::default());
    f();
    uninstall().expect("checker was installed")
}

#[test]
fn wave_write_race_attributed_to_second_writer() {
    let _g = locked();
    let s = sched();
    let store = RefCell::new(DeferredStore::new(vec![0u32; 8]));
    let items: Vec<u32> = (0..8).collect();
    let report = checked(|| {
        // every lane stages cell 0 in the same wave: classic write-write race
        s.launch_thread_per_item(
            &items,
            |it, _m| store.borrow_mut().stage(0, it),
            |_| store.borrow_mut().flush(),
        );
    });
    // 8 stages to one cell: 7 conflicts counted, 1 recorded after dedup
    assert_eq!(report.count_of(HazardKind::WaveWriteRace), 7);
    let h = report
        .hazards
        .iter()
        .find(|h| h.kind == HazardKind::WaveWriteRace)
        .expect("race recorded");
    // second writer is wave 0, warp 0, lane 1; first writer was lane 0
    assert_eq!(h.ctx.wave, 0);
    assert_eq!(h.ctx.warp, 0);
    assert_eq!(h.ctx.lane, 1);
    let prior = h.prior.as_ref().expect("prior access recorded");
    assert_eq!(prior.ctx.warp, 0);
    assert_eq!(prior.ctx.lane, 0);
}

#[test]
fn same_cell_in_different_waves_is_not_a_race() {
    let _g = locked();
    let s = sched();
    let store = RefCell::new(DeferredStore::new(vec![0u32; 8]));
    // items 0 and 64 both write cell 0, but land in waves 0 and 1 (tiny
    // device holds 64 resident threads) with a flush in between
    let items: Vec<u32> = (0..65).collect();
    let report = checked(|| {
        s.launch_thread_per_item(
            &items,
            |it, _m| {
                if it == 0 || it == 64 {
                    store.borrow_mut().stage(0, it);
                }
            },
            |_| store.borrow_mut().flush(),
        );
    });
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn write_through_during_wave_is_flagged() {
    let _g = locked();
    let s = sched();
    let store = RefCell::new(DeferredStore::new(vec![0u32; 8]));
    let items: Vec<u32> = (0..2).collect();
    let report = checked(|| {
        s.launch_thread_per_item(
            &items,
            |it, _m| {
                if it == 0 {
                    store.borrow_mut().stage(0, 1); // lane 0 defers
                } else {
                    store.borrow_mut().write_through(0, 2); // lane 1 writes now
                }
            },
            |_| store.borrow_mut().flush(),
        );
    });
    assert_eq!(report.count_of(HazardKind::WriteThroughRace), 1);
    let h = &report.hazards[0];
    assert_eq!(h.kind, HazardKind::WriteThroughRace);
    assert_eq!((h.ctx.wave, h.ctx.warp, h.ctx.lane), (0, 0, 1));
    assert_eq!(h.prior.as_ref().unwrap().ctx.lane, 0);
}

#[test]
fn read_of_uninitialized_cell_is_flagged_once() {
    let _g = locked();
    let s = sched();
    let items: Vec<u32> = (0..4).collect();
    let report = checked(|| {
        // allocated under the checker, so the cells start shadow-uninit
        let store = RefCell::new(DeferredStore::new_uninit(vec![0u32; 8]));
        s.launch_thread_per_item(
            &items,
            |it, _m| {
                if it == 2 {
                    store.borrow().get(5); // lane 2 reads garbage
                }
                store.borrow_mut().write_through(it as usize, 1);
                store.borrow().get(it as usize); // initialised: fine
            },
            |_| {},
        );
    });
    assert_eq!(report.count_of(HazardKind::UninitRead), 1);
    let h = &report.hazards[0];
    assert_eq!(h.kind, HazardKind::UninitRead);
    assert_eq!((h.ctx.wave, h.ctx.warp, h.ctx.lane), (0, 0, 2));
}

#[test]
fn initialised_store_never_reports_uninit_reads() {
    let _g = locked();
    let store = RefCell::new(DeferredStore::new(vec![7u32; 4]));
    let report = checked(|| {
        sched().launch_thread_per_item(
            &[0u32, 1, 2, 3],
            |it, _m| {
                store.borrow().get(it as usize);
            },
            |_| {},
        );
    });
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn out_of_bounds_stage_is_recorded_before_the_panic() {
    let _g = locked();
    let s = sched();
    let store = RefCell::new(DeferredStore::new(vec![0u32; 3]));
    install(CheckerConfig::default());
    let result = catch_unwind(AssertUnwindSafe(|| {
        s.launch_thread_per_item(
            &[0u32, 1, 2, 3],
            |it, _m| {
                // lane 2 computes a bad index (len + 5)
                let i = if it == 2 { 8 } else { it as usize };
                store.borrow_mut().stage(i, 1);
            },
            |_| {},
        );
    }));
    let report = uninstall().expect("checker was installed");
    assert!(result.is_err(), "expected the eager bounds panic");
    assert_eq!(report.count_of(HazardKind::OutOfBounds), 1);
    let h = report
        .hazards
        .iter()
        .find(|h| h.kind == HazardKind::OutOfBounds)
        .unwrap();
    assert_eq!((h.ctx.wave, h.ctx.warp, h.ctx.lane), (0, 0, 2));
    assert!(h.detail.contains("index 8"), "detail: {}", h.detail);
}

#[test]
fn barrier_divergence_names_the_missing_lane() {
    let _g = locked();
    let s = sched(); // block 8 = warps {0..3} and {4..7}
    let report = checked(|| {
        s.launch_block_per_item(
            &[()],
            |_, ctx| {
                ctx.lane(0).alu(&CostModel::default_gpu(), 3);
                ctx.set_lane_active(1, false); // early return in warp 0
                ctx.barrier();
            },
            |_| {},
        );
    });
    // warp 0 is mixed (lane 1 left); warp 1 is uniformly active: one hazard
    assert_eq!(report.count_of(HazardKind::BarrierDivergence), 1);
    let h = &report.hazards[0];
    assert_eq!(h.kind, HazardKind::BarrierDivergence);
    assert_eq!(
        (h.ctx.wave, h.ctx.block, h.ctx.warp, h.ctx.lane),
        (0, 0, 0, 1)
    );
}

#[test]
fn uniformly_exited_warp_does_not_diverge() {
    let _g = locked();
    let s = sched();
    let report = checked(|| {
        s.launch_block_per_item(
            &[()],
            |_, ctx| {
                ctx.lane(0).alu(&CostModel::default_gpu(), 3);
                // the whole second warp exits together: no divergence
                for l in 4..8 {
                    ctx.set_lane_active(l, false);
                }
                ctx.barrier();
            },
            |_| {},
        );
    });
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn mixed_atomic_and_staged_access_is_flagged() {
    let _g = locked();
    let s = sched();
    let store = RefCell::new(DeferredStore::new(vec![0u32; 8]));
    let items: Vec<u32> = (0..2).collect();
    let report = checked(|| {
        s.launch_thread_per_item(
            &items,
            |it, _m| {
                if it == 0 {
                    store.borrow_mut().stage(0, 1); // plain deferred write
                } else {
                    store.borrow_mut().atomic_exchange(0, 2); // atomic, same cell
                }
            },
            |_| store.borrow_mut().flush(),
        );
    });
    assert_eq!(report.count_of(HazardKind::MixedAtomicPlain), 1);
    let h = &report.hazards[0];
    assert_eq!(h.kind, HazardKind::MixedAtomicPlain);
    assert_eq!((h.ctx.wave, h.ctx.warp, h.ctx.lane), (0, 0, 1));
    assert_eq!(h.prior.as_ref().unwrap().ctx.lane, 0);
}

#[test]
fn atomic_on_dedicated_cell_is_clean_unlike_dn_flag_aliasing() {
    // Regression shape for the ΔN cost-attribution bug: the gpu backend
    // used to charge its ΔN atomic at `addr.processed`, the same simulated
    // word as vertex 0's processed flag — an atomic and a plain staged
    // write aliasing one cell, exactly the MixedAtomicPlain pattern below.
    // With the counter on its own `addr.dn` cell the same kernel is clean.
    let _g = locked();
    let s = sched();
    let items: Vec<u32> = (0..2).collect();

    // aliased: lane 0 stages cell 0, lane 1 atomics the same cell
    let store = RefCell::new(DeferredStore::new(vec![0u32; 8]));
    let report = checked(|| {
        s.launch_thread_per_item(
            &items,
            |it, _m| {
                if it == 0 {
                    store.borrow_mut().stage(0, 1);
                } else {
                    store.borrow_mut().atomic_exchange(0, 1);
                }
            },
            |_| store.borrow_mut().flush(),
        );
    });
    assert_eq!(report.count_of(HazardKind::MixedAtomicPlain), 1);

    // dedicated: the atomic lands on its own cell — no hazard
    let store = RefCell::new(DeferredStore::new(vec![0u32; 8]));
    let report = checked(|| {
        s.launch_thread_per_item(
            &items,
            |it, _m| {
                if it == 0 {
                    store.borrow_mut().stage(0, 1);
                } else {
                    store.borrow_mut().atomic_exchange(1, 1);
                }
            },
            |_| store.borrow_mut().flush(),
        );
    });
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn probe_overrun_is_flagged_with_attribution() {
    let _g = locked();
    // The real table code cannot overrun its budget (the linear fallback
    // is bounded), so drive the hooks directly as a hostile kernel would.
    let report = checked(|| {
        hooks::kernel_begin("kernel:fault");
        hooks::wave_begin(3);
        hooks::lane_ctx(1, 2);
        hooks::probe_start(0x1000, 16, 4);
        for s in 0..6 {
            hooks::probe_slot(0x1000, s); // 6 probes > limit 4
        }
        hooks::probe_end(0x1000);
        hooks::kernel_end();
    });
    assert_eq!(report.count_of(HazardKind::ProbeOverrun), 1);
    let h = &report.hazards[0];
    assert_eq!(h.kind, HazardKind::ProbeOverrun);
    assert_eq!((h.ctx.wave, h.ctx.warp, h.ctx.lane), (3, 1, 2));
    assert_eq!(h.kernel, "kernel:fault");
}

#[test]
fn table_slot_out_of_bounds_is_flagged() {
    let _g = locked();
    let report = checked(|| {
        hooks::kernel_begin("kernel:fault");
        hooks::wave_begin(0);
        hooks::lane_ctx(0, 3);
        hooks::probe_start(0x2000, 8, 16);
        hooks::probe_slot(0x2000, 9); // slot 9 in a table of capacity 8
        hooks::probe_end(0x2000);
        hooks::kernel_end();
    });
    assert_eq!(report.count_of(HazardKind::OutOfBounds), 1);
    assert_eq!(report.hazards[0].ctx.lane, 3);
}

#[test]
fn duplicate_key_claim_is_flagged_until_table_clear() {
    let _g = locked();
    let report = checked(|| {
        hooks::kernel_begin("kernel:fault");
        hooks::wave_begin(0);
        hooks::lane_ctx(0, 0);
        hooks::claim(0x3000, 7, 1);
        hooks::lane_ctx(0, 1);
        hooks::claim(0x3000, 7, 3); // key 7 now lives in two slots
        hooks::table_clear(0x3000);
        hooks::claim(0x3000, 7, 3); // fresh generation: fine
        hooks::kernel_end();
    });
    assert_eq!(report.count_of(HazardKind::DuplicateKey), 1);
    let h = &report.hazards[0];
    assert_eq!(h.kind, HazardKind::DuplicateKey);
    assert_eq!(h.ctx.lane, 1);
}

#[test]
fn shipped_backends_are_hazard_free() {
    let _g = locked();
    let graphs = [
        two_cliques_light_bridge(6),
        caveman_weighted(4, 8, 0.5),
        erdos_renyi(200, 600, 11),
    ];
    let tiny = LpaConfig::default().with_device(DeviceConfig::tiny());
    let cc1 = tiny.with_swap_mode(SwapMode::CrossCheck { every: 1 });
    // Frontier runs drive the sparse compact + re-activation launches
    // (including `kernel:compact`) under the checker on both devices.
    let tiny_f = tiny.with_frontier(true);
    let a100_f = LpaConfig::default().with_frontier(true);
    for (i, g) in graphs.iter().enumerate() {
        for (name, report) in [
            ("sim/tiny", checked(|| drop(lpa_gpu(g, &tiny)))),
            (
                "sim/a100",
                checked(|| drop(lpa_gpu(g, &LpaConfig::default()))),
            ),
            ("sim/tiny+cc1", checked(|| drop(lpa_gpu(g, &cc1)))),
            ("sim/tiny+frontier", checked(|| drop(lpa_gpu(g, &tiny_f)))),
            ("sim/a100+frontier", checked(|| drop(lpa_gpu(g, &a100_f)))),
            (
                "native",
                checked(|| drop(lpa_native(g, &LpaConfig::default()))),
            ),
            (
                "gunrock",
                checked(|| drop(gunrock_lp(g, &GunrockConfig::default()))),
            ),
        ] {
            assert!(
                report.is_clean(),
                "graph {i}, backend {name}:\n{}",
                report.render()
            );
        }
    }
}

#[test]
fn installed_checker_is_neutral_for_results() {
    let _g = locked();
    let g = erdos_renyi(180, 540, 5);
    let cfg = LpaConfig::default().with_device(DeviceConfig::tiny());
    let base = lpa_gpu(&g, &cfg);
    install(CheckerConfig::default());
    let watched = lpa_gpu(&g, &cfg);
    let report = uninstall().unwrap();
    assert!(report.is_clean(), "{}", report.render());
    assert!(report.accesses > 0, "checker saw no traffic");
    assert_eq!(base.labels, watched.labels);
    assert_eq!(base.stats, watched.stats);
    assert_eq!(base.iterations, watched.iterations);

    let nb = lpa_native(&g, &cfg);
    install(CheckerConfig::default());
    let nw = lpa_native(&g, &cfg);
    uninstall();
    assert_eq!(nb.labels, nw.labels);
}

#[test]
fn hazard_cap_suppresses_but_keeps_counting() {
    let _g = locked();
    let s = sched();
    let store = RefCell::new(DeferredStore::new(vec![0u32; 64]));
    let items: Vec<u32> = (0..64).collect();
    install(CheckerConfig { max_hazards: 2 });
    s.launch_thread_per_item(
        &items,
        |it, _m| {
            // every pair of lanes races on its own cell: 32 distinct races
            store.borrow_mut().stage((it / 2) as usize, it);
        },
        |_| store.borrow_mut().flush(),
    );
    let report = uninstall().unwrap();
    assert_eq!(report.count_of(HazardKind::WaveWriteRace), 32);
    assert_eq!(report.hazards.len(), 2);
    assert_eq!(report.suppressed, 30);
}
