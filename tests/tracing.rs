//! Tracing is observation only: attaching any sink must not change what
//! the algorithms compute, and the exporters must emit exactly the
//! documented formats. The Chrome exporter is pinned by a golden file
//! (regenerate with `UPDATE_GOLDEN=1 cargo test --test tracing`).

use nu_lpa::core::{
    lpa_gpu, lpa_gpu_traced, lpa_native, lpa_native_traced, lpa_seq, lpa_seq_traced, LpaConfig,
};
use nu_lpa::graph::gen::{caveman_weighted, erdos_renyi, two_cliques_light_bridge};
use nu_lpa::obs::{json, summarize, ChromeTraceSink, JsonlSink, RecordingSink, TraceSink};

const GOLDEN: &str = "tests/golden/trace_chrome.json";

#[test]
fn recording_sink_is_neutral_for_gpu_backend() {
    let graphs = [
        erdos_renyi(200, 600, 7),
        caveman_weighted(4, 8, 0.5),
        two_cliques_light_bridge(5),
    ];
    for (i, g) in graphs.iter().enumerate() {
        let base = lpa_gpu(g, &LpaConfig::default());
        let mut sink = RecordingSink::new();
        let traced = lpa_gpu_traced(g, &LpaConfig::default(), &mut sink);
        assert_eq!(base.labels, traced.labels, "labels diverged on graph {i}");
        assert_eq!(base.stats, traced.stats, "stats diverged on graph {i}");
        assert_eq!(base.iterations, traced.iterations);
        assert_eq!(base.changed_per_iter, traced.changed_per_iter);
        let (begins, ends, counters) = sink.span_counts();
        assert!(begins > 0, "traced run on graph {i} recorded no spans");
        assert_eq!(begins, ends, "unbalanced spans on graph {i}");
        assert!(counters > 0);
    }
}

#[test]
fn recording_sink_is_neutral_for_native_and_seq() {
    let g = erdos_renyi(150, 450, 3);
    let cfg = LpaConfig::default();

    let base = lpa_native(&g, &cfg);
    let mut sink = RecordingSink::new();
    let traced = lpa_native_traced(&g, &cfg, &mut sink);
    assert_eq!(base.labels, traced.labels);
    assert_eq!(base.iterations, traced.iterations);
    assert!(sink.span_counts().0 > 0);

    let base = lpa_seq(&g, &cfg);
    let mut sink = RecordingSink::new();
    let traced = lpa_seq_traced(&g, &cfg, &mut sink);
    assert_eq!(base.labels, traced.labels);
    assert_eq!(base.iterations, traced.iterations);
    assert!(sink.span_counts().0 > 0);
}

#[test]
fn gpu_trace_contains_expected_span_kinds() {
    let g = caveman_weighted(3, 6, 0.5);
    let mut sink = RecordingSink::new();
    lpa_gpu_traced(&g, &LpaConfig::default(), &mut sink);
    let names = sink.begin_names();
    for expected in ["lpa_gpu", "iteration", "wave"] {
        assert!(names.contains(&expected), "missing {expected} span");
    }
    assert!(
        names.iter().any(|n| n.starts_with("kernel:")),
        "missing kernel-launch span"
    );
}

fn chrome_trace_of_tiny_graph() -> String {
    let g = two_cliques_light_bridge(3);
    let mut sink = ChromeTraceSink::new(Vec::new());
    lpa_gpu_traced(&g, &LpaConfig::default(), &mut sink);
    sink.finish();
    assert!(sink.take_error().is_none());
    String::from_utf8(sink.into_inner().unwrap()).unwrap()
}

#[test]
fn chrome_exporter_matches_golden_file() {
    let got = chrome_trace_of_tiny_graph();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing; run UPDATE_GOLDEN=1 cargo test --test tracing");
    assert_eq!(got, want, "Chrome trace output drifted from {GOLDEN}");
}

#[test]
fn chrome_trace_is_valid_json_with_expected_phases() {
    let text = chrome_trace_of_tiny_graph();
    let doc = json::parse(&text).expect("exporter must emit parseable JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut phases: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
        .collect();
    phases.sort_unstable();
    phases.dedup();
    for ph in ["B", "E", "C", "M"] {
        assert!(phases.contains(&ph), "missing phase {ph}");
    }
    // B/E balance per (pid, tid)
    let balance: i64 = events
        .iter()
        .map(|e| match e.get("ph").and_then(|p| p.as_str()) {
            Some("B") => 1,
            Some("E") => -1,
            _ => 0,
        })
        .sum();
    assert_eq!(balance, 0, "unbalanced B/E events");
}

#[test]
fn jsonl_and_chrome_summaries_agree_on_real_run() {
    let g = two_cliques_light_bridge(3);
    let cfg = LpaConfig::default();

    let mut jsonl = JsonlSink::new(Vec::new());
    lpa_gpu_traced(&g, &cfg, &mut jsonl);
    jsonl.finish();
    let jsonl_text = String::from_utf8(jsonl.into_inner().unwrap()).unwrap();

    let chrome_text = chrome_trace_of_tiny_graph();

    let a = summarize(&jsonl_text).unwrap();
    let b = summarize(&chrome_text).unwrap();
    assert_eq!(a.spans, b.spans);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.end_ts, b.end_ts);
    assert!(a.spans.contains_key("lpa_gpu"));
}
