//! Cross-implementation invariants: the quality/runtime orderings the
//! paper's Fig. 6 reports, verified as properties rather than absolute
//! numbers.

use nu_lpa::baselines::{
    flpa, gunrock_lp, louvain, networkit_plp, GunrockConfig, LouvainConfig, PlpConfig,
};
use nu_lpa::core::{lpa_gpu, lpa_native, LpaConfig};
use nu_lpa::graph::gen::{
    caveman_ground_truth, caveman_weighted, grid2d, planted_partition, web_crawl,
};
use nu_lpa::metrics::{check_labels, modularity, same_partition};
use nu_lpa::simt::DeviceConfig;

#[test]
fn every_implementation_validates_on_random_web_graph() {
    let g = web_crawl(3000, 6, 0.1, 5);
    check_labels(&g, &flpa(&g, 1).labels).unwrap();
    check_labels(&g, &networkit_plp(&g, &PlpConfig::default()).labels).unwrap();
    check_labels(&g, &gunrock_lp(&g, &GunrockConfig::default()).labels).unwrap();
    check_labels(&g, &louvain(&g, &LouvainConfig::default()).labels).unwrap();
    check_labels(&g, &lpa_native(&g, &LpaConfig::default()).labels).unwrap();
    check_labels(
        &g,
        &lpa_gpu(&g, &LpaConfig::default().with_device(DeviceConfig::tiny())).labels,
    )
    .unwrap();
}

#[test]
fn louvain_tops_modularity_on_planted_graph() {
    // Fig. 6c: cuGraph-Louvain has the best modularity
    let pp = planted_partition(&[80, 80, 80, 80], 12.0, 1.0, 7);
    let g = &pp.graph;
    let q_louvain = modularity(g, &louvain(g, &LouvainConfig::default()).labels);
    for (name, labels) in [
        ("flpa", flpa(g, 1).labels),
        ("plp", networkit_plp(g, &PlpConfig::default()).labels),
        ("nu-lpa", lpa_native(g, &LpaConfig::default()).labels),
    ] {
        let q = modularity(g, &labels);
        assert!(
            q_louvain >= q - 1e-9,
            "{name}: {q} exceeds louvain {q_louvain}"
        );
    }
}

#[test]
fn synchronous_lp_worst_on_sparse_graphs() {
    // Fig. 6c: Gunrock's modularity is "very low" — reproduced on the
    // oscillation-prone sparse categories
    let g = grid2d(40, 40, 1.0, 3);
    let q_sync = modularity(&g, &gunrock_lp(&g, &GunrockConfig::default()).labels);
    let q_nu = modularity(&g, &lpa_native(&g, &LpaConfig::default()).labels);
    let q_flpa = modularity(&g, &flpa(&g, 1).labels);
    assert!(
        q_sync < q_nu && q_sync < q_flpa,
        "sync {q_sync} nu {q_nu} flpa {q_flpa}"
    );
}

#[test]
fn all_implementations_agree_on_obvious_cliques() {
    let g = caveman_weighted(5, 6, 0.5);
    let truth = caveman_ground_truth(5, 6);
    assert!(same_partition(&flpa(&g, 1).labels, &truth), "flpa");
    assert!(
        same_partition(&networkit_plp(&g, &PlpConfig::default()).labels, &truth),
        "plp"
    );
    assert!(
        same_partition(&louvain(&g, &LouvainConfig::default()).labels, &truth),
        "louvain"
    );
    assert!(
        same_partition(&lpa_native(&g, &LpaConfig::default()).labels, &truth),
        "nu-lpa native"
    );
    assert!(
        same_partition(
            &lpa_gpu(&g, &LpaConfig::default().with_device(DeviceConfig::tiny())).labels,
            &truth
        ),
        "nu-lpa gpu"
    );
}

#[test]
fn nu_lpa_beats_flpa_quality_on_road_networks() {
    // Fig. 6c: ν-LPA's modularity win over FLPA concentrates on road
    // networks and k-mer graphs
    let g = grid2d(80, 80, 0.55, 11);
    let q_nu = modularity(&g, &lpa_native(&g, &LpaConfig::default()).labels);
    let q_flpa = modularity(&g, &flpa(&g, 1).labels);
    assert!(q_nu > q_flpa, "nu {q_nu} vs flpa {q_flpa}");
}

#[test]
fn gpu_and_native_quality_comparable_on_web_graph() {
    let g = web_crawl(4000, 8, 0.08, 2);
    let q_native = modularity(&g, &lpa_native(&g, &LpaConfig::default()).labels);
    let q_gpu = modularity(&g, &lpa_gpu(&g, &LpaConfig::default()).labels);
    assert!(
        (q_native - q_gpu).abs() < 0.15,
        "native {q_native} gpu {q_gpu}"
    );
}
