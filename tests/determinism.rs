//! Reproducibility: fixed seeds and configurations must give bit-identical
//! results everywhere — generators, all LPA backends, all baselines, and
//! the simulator's statistics.

use nu_lpa::baselines::{flpa, louvain, networkit_plp, LouvainConfig, PlpConfig};
use nu_lpa::core::{lpa_gpu, lpa_native, lpa_seq, LpaConfig};
use nu_lpa::graph::datasets::{spec_by_name, TEST_SCALE};
use nu_lpa::graph::gen::web_crawl;
use nu_lpa::simt::DeviceConfig;

#[test]
fn dataset_generation_is_stable() {
    for name in ["uk-2002", "com-LiveJournal", "asia_osm", "kmer_A2a"] {
        let s = spec_by_name(name).unwrap();
        assert_eq!(
            s.generate(TEST_SCALE).graph,
            s.generate(TEST_SCALE).graph,
            "{name}"
        );
    }
}

#[test]
fn gpu_backend_fully_deterministic() {
    let g = web_crawl(2000, 6, 0.1, 9);
    let cfg = LpaConfig::default().with_device(DeviceConfig::tiny());
    let a = lpa_gpu(&g, &cfg);
    let b = lpa_gpu(&g, &cfg);
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.changed_per_iter, b.changed_per_iter);
}

#[test]
fn seq_backend_deterministic() {
    let g = web_crawl(1500, 5, 0.1, 3);
    let cfg = LpaConfig::default();
    assert_eq!(lpa_seq(&g, &cfg).labels, lpa_seq(&g, &cfg).labels);
}

#[test]
fn baselines_deterministic_per_seed() {
    let g = web_crawl(1500, 5, 0.1, 4);
    assert_eq!(flpa(&g, 11).labels, flpa(&g, 11).labels);
    assert_eq!(
        networkit_plp(&g, &PlpConfig::default()).labels,
        networkit_plp(&g, &PlpConfig::default()).labels
    );
    assert_eq!(
        louvain(&g, &LouvainConfig::default()).labels,
        louvain(&g, &LouvainConfig::default()).labels
    );
}

#[test]
fn native_backend_deterministic_single_thread() {
    // the native backend races benignly across Rayon workers; pinned to
    // one thread it must be exactly reproducible
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let g = web_crawl(1500, 5, 0.1, 5);
    let cfg = LpaConfig::default();
    let (a, b) = pool.install(|| (lpa_native(&g, &cfg), lpa_native(&g, &cfg)));
    assert_eq!(a.labels, b.labels);
}

#[test]
fn different_seeds_differ() {
    assert_ne!(web_crawl(500, 5, 0.1, 1), web_crawl(500, 5, 0.1, 2));
    let g = web_crawl(800, 5, 0.1, 1);
    // FLPA's random dominant pick responds to its seed
    let a = flpa(&g, 1).labels;
    let b = flpa(&g, 2).labels;
    assert_ne!(a, b, "seeded tie-breaking should vary");
}
