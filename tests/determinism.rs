//! Reproducibility: fixed seeds and configurations must give bit-identical
//! results everywhere — generators, all LPA backends, all baselines, and
//! the simulator's statistics.

use nu_lpa::baselines::{flpa, louvain, networkit_plp, LouvainConfig, PlpConfig};
use nu_lpa::core::{lpa_gpu, lpa_native, lpa_seq, LpaConfig};
use nu_lpa::graph::datasets::{spec_by_name, TEST_SCALE};
use nu_lpa::graph::gen::web_crawl;
use nu_lpa::simt::DeviceConfig;

#[test]
fn dataset_generation_is_stable() {
    for name in ["uk-2002", "com-LiveJournal", "asia_osm", "kmer_A2a"] {
        let s = spec_by_name(name).unwrap();
        assert_eq!(
            s.generate(TEST_SCALE).graph,
            s.generate(TEST_SCALE).graph,
            "{name}"
        );
    }
}

#[test]
fn gpu_backend_fully_deterministic() {
    let g = web_crawl(2000, 6, 0.1, 9);
    let cfg = LpaConfig::default().with_device(DeviceConfig::tiny());
    let a = lpa_gpu(&g, &cfg);
    let b = lpa_gpu(&g, &cfg);
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.changed_per_iter, b.changed_per_iter);
}

#[test]
fn seq_backend_deterministic() {
    let g = web_crawl(1500, 5, 0.1, 3);
    let cfg = LpaConfig::default();
    assert_eq!(lpa_seq(&g, &cfg).labels, lpa_seq(&g, &cfg).labels);
}

#[test]
fn baselines_deterministic_per_seed() {
    let g = web_crawl(1500, 5, 0.1, 4);
    assert_eq!(flpa(&g, 11).labels, flpa(&g, 11).labels);
    assert_eq!(
        networkit_plp(&g, &PlpConfig::default()).labels,
        networkit_plp(&g, &PlpConfig::default()).labels
    );
    assert_eq!(
        louvain(&g, &LouvainConfig::default()).labels,
        louvain(&g, &LouvainConfig::default()).labels
    );
}

#[test]
fn native_backend_deterministic_single_thread() {
    // the native backend races benignly across Rayon workers; pinned to
    // one thread it must be exactly reproducible
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let g = web_crawl(1500, 5, 0.1, 5);
    let cfg = LpaConfig::default();
    let (a, b) = pool.install(|| (lpa_native(&g, &cfg), lpa_native(&g, &cfg)));
    assert_eq!(a.labels, b.labels);
}

#[test]
fn frontier_reactivation_never_duplicates_worklist_entries() {
    // Regression test for duplicate frontier enqueues. Hub vertex 0 is
    // weakly tied to every leaf; the leaves are paired by heavy edges, so
    // in the first sweep one leaf of each pair adopts its partner's
    // label — and every one of those movers tries to re-activate the hub
    // in the same sweep. The in-queue bitmap must collapse those into a
    // single worklist entry; the drain-time debug asserts in `lpa_seq`
    // and `lpa_native` panic (under `cargo test`'s debug assertions) if
    // a duplicate ever lands, and the frontier run must still match the
    // dense sweep bit-for-bit.
    use nu_lpa::graph::GraphBuilder;
    let pairs = 12;
    let n = 1 + 2 * pairs;
    let mut edges: Vec<(u32, u32, f32)> = Vec::new();
    for p in 0..pairs as u32 {
        let (a, b) = (1 + 2 * p, 2 + 2 * p);
        edges.push((a, b, 10.0)); // heavy: the pair merges in sweep 1
        edges.push((0, a, 0.1)); // weak: each mover re-activates the hub
        edges.push((0, b, 0.1));
    }
    let g = GraphBuilder::new(n).add_undirected_edges(edges).build();
    for frontier_cfg in [
        LpaConfig::default().with_frontier(true),
        LpaConfig::default().with_frontier(true).with_buckets(None),
    ] {
        let dense = frontier_cfg.with_frontier(false);
        assert_eq!(
            lpa_seq(&g, &frontier_cfg).labels,
            lpa_seq(&g, &dense).labels,
            "seq frontier diverged from dense"
        );
        for threads in [1, 4] {
            assert_eq!(
                lpa_native(&g, &frontier_cfg.with_threads(threads)).labels,
                lpa_native(&g, &dense.with_threads(1)).labels,
                "native frontier diverged from dense (threads={threads})"
            );
        }
    }
}

#[test]
fn different_seeds_differ() {
    assert_ne!(web_crawl(500, 5, 0.1, 1), web_crawl(500, 5, 0.1, 2));
    let g = web_crawl(800, 5, 0.1, 1);
    // FLPA's random dominant pick responds to its seed
    let a = flpa(&g, 1).labels;
    let b = flpa(&g, 2).labels;
    assert_ne!(a, b, "seeded tie-breaking should vary");
}
