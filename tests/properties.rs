//! Cross-crate property-based tests (proptest): invariants that must hold
//! for *any* graph, not just the fixtures.

use nu_lpa::core::{
    bucket_partition, lpa_gpu, lpa_native, lpa_seq, BucketThresholds, LpaConfig, SwapMode,
};
use nu_lpa::graph::components::connected_components;
use nu_lpa::graph::permute::{random_permutation, relabel};
use nu_lpa::graph::{GraphBuilder, VertexId};
use nu_lpa::metrics::{check_labels, community_count, modularity, same_partition};
use nu_lpa::simt::DeviceConfig;
use proptest::prelude::*;

/// Arbitrary small undirected graph: up to `n` vertices, random edges.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = nu_lpa::graph::Csr> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 0.1f32..4.0), 0..max_m).prop_map(
            move |edges| {
                GraphBuilder::new(n)
                    .add_undirected_edges(edges.into_iter().filter(|(u, v, _)| u != v))
                    .build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lpa_seq_labels_always_valid(g in arb_graph(60, 150)) {
        let r = lpa_seq(&g, &LpaConfig::default());
        prop_assert!(check_labels(&g, &r.labels).is_ok());
        prop_assert!(r.iterations >= 1);
        prop_assert_eq!(r.changed_per_iter.len(), r.iterations as usize);
    }

    #[test]
    fn lpa_native_labels_always_valid(g in arb_graph(60, 150)) {
        let r = lpa_native(&g, &LpaConfig::default());
        prop_assert!(check_labels(&g, &r.labels).is_ok());
    }

    #[test]
    fn lpa_gpu_labels_always_valid(g in arb_graph(50, 120)) {
        let cfg = LpaConfig::default().with_device(DeviceConfig::tiny());
        let r = lpa_gpu(&g, &cfg);
        prop_assert!(check_labels(&g, &r.labels).is_ok());
        prop_assert!(r.stats.sim_cycles <= r.stats.lane_cycles + r.stats.idle_cycles);
    }

    #[test]
    fn modularity_always_in_range(g in arb_graph(50, 150)) {
        let r = lpa_seq(&g, &LpaConfig::default());
        let q = modularity(&g, &r.labels);
        prop_assert!((-0.5..=1.0).contains(&q), "Q = {}", q);
    }

    #[test]
    fn pick_less_every_iteration_never_raises_labels(g in arb_graph(40, 100)) {
        let cfg = LpaConfig::default().with_swap_mode(SwapMode::PickLess { every: 1 });
        let r = lpa_seq(&g, &cfg);
        for (v, &l) in r.labels.iter().enumerate() {
            prop_assert!((l as usize) <= v);
        }
    }

    #[test]
    fn isolated_vertices_never_move(g in arb_graph(40, 60)) {
        let r = lpa_seq(&g, &LpaConfig::default());
        for v in g.vertices() {
            if g.degree(v) == 0 {
                prop_assert_eq!(r.labels[v as usize], v);
            }
        }
    }

    #[test]
    fn modularity_invariant_under_relabelling(
        g in arb_graph(40, 100),
        seed in 0u64..1000,
    ) {
        let r = lpa_seq(&g, &LpaConfig::default());
        let q = modularity(&g, &r.labels);
        let perm = random_permutation(g.num_vertices(), seed);
        let h = relabel(&g, &perm);
        // permute the labels the same way: vertex perm[v] gets label ...
        // community ids are arbitrary; map them through perm too
        let mut plabels: Vec<VertexId> = vec![0; g.num_vertices()];
        for v in g.vertices() {
            plabels[perm[v as usize] as usize] = perm[r.labels[v as usize] as usize];
        }
        let q2 = modularity(&h, &plabels);
        prop_assert!((q - q2).abs() < 1e-9, "{} vs {}", q, q2);
    }

    #[test]
    fn community_count_consistent_across_backends(g in arb_graph(40, 120)) {
        // backends may find different partitions, but each must produce at
        // least one community and at most |V|
        let n = g.num_vertices();
        for labels in [
            lpa_seq(&g, &LpaConfig::default()).labels,
            lpa_native(&g, &LpaConfig::default()).labels,
        ] {
            let k = community_count(&labels);
            prop_assert!(k >= 1 && k <= n);
        }
    }

    #[test]
    fn same_partition_is_reflexive(g in arb_graph(30, 80)) {
        let r = lpa_seq(&g, &LpaConfig::default());
        prop_assert!(same_partition(&r.labels, &r.labels));
    }

    #[test]
    fn communities_never_cross_components(g in arb_graph(50, 120)) {
        // labels only travel along edges, so two vertices sharing a
        // community must share a connected component — in every backend
        let comps = connected_components(&g);
        for labels in [
            lpa_seq(&g, &LpaConfig::default()).labels,
            lpa_native(&g, &LpaConfig::default()).labels,
            lpa_gpu(&g, &LpaConfig::default().with_device(DeviceConfig::tiny())).labels,
        ] {
            let mut rep: std::collections::HashMap<u32, u32> = Default::default();
            for v in g.vertices() {
                let entry = rep.entry(labels[v as usize]).or_insert(comps[v as usize]);
                prop_assert_eq!(*entry, comps[v as usize], "community spans components");
            }
        }
    }

    #[test]
    fn community_count_at_least_component_count_under_lpa(g in arb_graph(50, 120)) {
        let comps = connected_components(&g);
        let k_comp = community_count(&nu_lpa::metrics::compact_labels(&comps).0);
        let labels = lpa_native(&g, &LpaConfig::default()).labels;
        prop_assert!(community_count(&labels) >= k_comp);
    }

    #[test]
    fn frontier_agrees_with_dense_sweeps(g in arb_graph(50, 120)) {
        // Worklist scheduling is an execution-order optimisation, not an
        // algorithm change: under every swap-mitigation mode the frontier
        // run of each backend must land on the dense sweep's labels
        // (seq/native mirror the pruning flags exactly; the simulator's
        // narrowed rule is label-identical on single-wave launches, and
        // these graphs fit one A100 wave).
        for mode in [
            SwapMode::Off,
            SwapMode::CrossCheck { every: 2 },
            SwapMode::PickLess { every: 4 },
            SwapMode::Hybrid { cc_every: 2, pl_every: 3 },
        ] {
            let dense = LpaConfig::default().with_swap_mode(mode).with_threads(1);
            let front = dense.with_frontier(true);
            let ds = lpa_seq(&g, &dense);
            let fs = lpa_seq(&g, &front);
            prop_assert_eq!(&fs.labels, &ds.labels, "seq {:?}", mode);
            let dn = lpa_native(&g, &dense);
            let fnat = lpa_native(&g, &front);
            prop_assert_eq!(&fnat.labels, &dn.labels, "native {:?}", mode);
            let dg = lpa_gpu(&g, &dense);
            let fg = lpa_gpu(&g, &front);
            prop_assert_eq!(&fg.labels, &dg.labels, "gpu {:?}", mode);
            // The frontier may only skip the dense run's trailing ΔN = 0
            // confirmation sweep, nothing more.
            prop_assert!(
                fg.iterations == dg.iterations || fg.iterations + 1 == dg.iterations,
                "gpu {:?}: {} vs {}", mode, fg.iterations, dg.iterations
            );
            let q_dense = modularity(&g, &ds.labels);
            for labels in [&fs.labels, &fnat.labels] {
                prop_assert!((modularity(&g, labels) - q_dense).abs() < 1e-9);
            }
            prop_assert!(
                (modularity(&g, &fg.labels) - modularity(&g, &dg.labels)).abs() < 1e-9
            );
        }
    }

    #[test]
    fn bucket_partition_is_disjoint_cover_on_any_graph(
        g in arb_graph(60, 150),
        low in 1u32..8,
        span in 1u32..16,
    ) {
        // Every candidate lands in exactly one degree bucket, each bucket
        // respects its threshold band, and candidate order is preserved
        // within a bucket — the invariants the fast path's chunked claim
        // loops rely on.
        let t = BucketThresholds { low_max: low, mid_max: low + span };
        let cands: Vec<VertexId> = g.vertices().collect();
        let buckets = bucket_partition(&g, &cands, t);
        let mut seen = vec![false; cands.len()];
        for (k, b) in buckets.iter().enumerate() {
            prop_assert!(b.windows(2).all(|w| w[0] < w[1]), "bucket {} out of order", k);
            for &i in b {
                prop_assert!(!seen[i], "candidate index {} in two buckets", i);
                seen[i] = true;
                let d = g.degree(cands[i]) as u32;
                match k {
                    0 => prop_assert!(d <= t.low_max),
                    1 => prop_assert!(d > t.low_max && d <= t.mid_max),
                    _ => prop_assert!(d > t.mid_max),
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "bucket partition dropped a candidate");
    }
}

proptest! {
    // The thread × bucketing identity sweep runs many detections per
    // case; keep the case count low so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn native_bit_identical_across_threads_and_bucketing(g in arb_graph(50, 120)) {
        // The speculative-pick / sequential-repair commit promises the
        // committed trajectory of the bucketed fast path equals the
        // sequential asynchronous sweep — so labels must be bit-identical
        // across any thread count, with bucketing on or off, in both
        // scheduling modes, under every swap-mitigation mode.
        for mode in [
            SwapMode::Off,
            SwapMode::CrossCheck { every: 2 },
            SwapMode::PickLess { every: 1 },
            SwapMode::Hybrid { cc_every: 2, pl_every: 3 },
        ] {
            for frontier in [false, true] {
                let cfg = LpaConfig::default()
                    .with_swap_mode(mode)
                    .with_frontier(frontier);
                let base = lpa_native(&g, &cfg.with_threads(1));
                for threads in [2usize, 4, 8] {
                    let r = lpa_native(&g, &cfg.with_threads(threads));
                    prop_assert_eq!(
                        &r.labels, &base.labels,
                        "threads={} frontier={} {:?}", threads, frontier, mode
                    );
                    prop_assert_eq!(
                        &r.changed_per_iter, &base.changed_per_iter,
                        "trajectory: threads={} frontier={} {:?}", threads, frontier, mode
                    );
                }
                // bucketing off (legacy per-vertex hashtable path) must
                // walk the same trajectory as the bucketed fast path
                let legacy = lpa_native(&g, &cfg.with_threads(1).with_buckets(None));
                prop_assert_eq!(
                    &legacy.labels, &base.labels,
                    "legacy vs fastpath: frontier={} {:?}", frontier, mode
                );
            }
        }
    }
}
