//! End-to-end pipeline tests: every dataset stand-in through every ν-LPA
//! backend, with structural validation and quality sanity bounds.

use nu_lpa::core::{lpa_gpu, lpa_native, lpa_seq, LpaConfig};
use nu_lpa::graph::datasets::{all_specs, Category, TEST_SCALE};
use nu_lpa::metrics::{check_labels, community_count, modularity};
use nu_lpa::simt::DeviceConfig;

#[test]
fn all_datasets_native_backend() {
    for spec in all_specs() {
        let d = spec.generate(TEST_SCALE);
        let g = &d.graph;
        let r = lpa_native(g, &LpaConfig::default());
        check_labels(g, &r.labels).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert!(r.iterations >= 1 && r.iterations <= 20, "{}", spec.name);
        assert!(
            community_count(&r.labels) >= 1,
            "{}: no communities",
            spec.name
        );
    }
}

#[test]
fn all_datasets_gpu_backend() {
    for spec in all_specs() {
        let d = spec.generate(TEST_SCALE);
        let g = &d.graph;
        let r = lpa_gpu(g, &LpaConfig::default());
        check_labels(g, &r.labels).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert!(r.stats.sim_cycles > 0, "{}: no simulated work", spec.name);
        assert!(r.stats.waves > 0, "{}", spec.name);
    }
}

#[test]
fn structured_categories_reach_positive_modularity() {
    // road and k-mer stand-ins have strong spatial/chain structure: every
    // backend should find clearly positive modularity there
    for spec in all_specs()
        .into_iter()
        .filter(|s| matches!(s.category, Category::Road | Category::Kmer))
    {
        let d = spec.generate(TEST_SCALE);
        let g = &d.graph;
        for (name, labels) in [
            ("seq", lpa_seq(g, &LpaConfig::default()).labels),
            ("native", lpa_native(g, &LpaConfig::default()).labels),
            ("gpu", lpa_gpu(g, &LpaConfig::default()).labels),
        ] {
            let q = modularity(g, &labels);
            assert!(q > 0.3, "{} {}: Q = {q}", spec.name, name);
        }
    }
}

#[test]
fn social_standins_recover_planted_structure() {
    for name in ["com-LiveJournal", "com-Orkut"] {
        let spec = nu_lpa::graph::datasets::spec_by_name(name).unwrap();
        // orkut at TEST_SCALE is only 77 vertices; use a larger slice
        let d = spec.generate(TEST_SCALE * 8.0);
        let truth = d.ground_truth.expect("social stand-ins carry truth");
        let r = lpa_native(&d.graph, &LpaConfig::default());
        let n = nu_lpa::metrics::nmi(&r.labels, &truth);
        assert!(n > 0.5, "{name}: NMI = {n}");
    }
}

#[test]
fn gpu_tiny_device_handles_every_dataset() {
    // waves much smaller than the graphs: exercises multi-wave paths
    let cfg = LpaConfig::default().with_device(DeviceConfig::tiny());
    for spec in all_specs().into_iter().take(4) {
        let d = spec.generate(TEST_SCALE);
        let r = lpa_gpu(&d.graph, &cfg);
        check_labels(&d.graph, &r.labels).unwrap();
        assert!(r.stats.waves >= 1);
    }
}

#[test]
fn table1_community_counts_are_plausible() {
    // k-mer graphs are unions of small components: |Γ| must be large
    // relative to |V| (the paper reports tens of millions on 200M vertices)
    let d = nu_lpa::graph::datasets::spec_by_name("kmer_V1r")
        .unwrap()
        .generate(TEST_SCALE);
    let r = lpa_native(&d.graph, &LpaConfig::default());
    let k = community_count(&r.labels);
    let n = d.graph.num_vertices();
    assert!(k * 4 > n / 60, "too few communities: {k} of {n}");
    // web graphs concentrate into fewer, larger communities
    let d = nu_lpa::graph::datasets::spec_by_name("webbase-2001")
        .unwrap()
        .generate(TEST_SCALE);
    let r = lpa_native(&d.graph, &LpaConfig::default());
    let kweb = community_count(&r.labels);
    assert!(
        kweb < d.graph.num_vertices() / 4,
        "web graph under-merged: {kweb}"
    );
}
