//! Parallel ≡ serial: the sharded wave scheduler's determinism contract.
//!
//! The GPU-simulator backend may execute lanes and blocks on host threads,
//! but its observable behaviour — labels, simulator statistics, staged
//! collision counts, iteration trajectory, and the full trace-event stream
//! — must be bit-for-bit identical to the single-threaded run for every
//! configuration. These tests sweep the full configuration matrix (probe
//! strategy × swap mode × device × value datatype) and compare runs at
//! 1 and 4 host threads.

use nu_lpa::core::{lpa_gpu, lpa_gpu_traced, LpaConfig, SwapMode, ValueType};
use nu_lpa::graph::gen::erdos_renyi;
use nu_lpa::hashtab::ProbeStrategy;
use nu_lpa::obs::RecordingSink;
use nu_lpa::simt::DeviceConfig;

/// Swap-mode points covering every mitigation code path: plain, pure
/// Cross-Check (atomic revert pass), pure Pick-Less (gated adoption),
/// and the hybrid of both.
fn swap_modes() -> [SwapMode; 5] {
    [
        SwapMode::Off,
        SwapMode::CrossCheck { every: 2 },
        SwapMode::PickLess { every: 4 },
        SwapMode::PickLess { every: 1 },
        SwapMode::Hybrid {
            cc_every: 2,
            pl_every: 3,
        },
    ]
}

#[test]
fn full_config_matrix_is_identical_across_thread_counts() {
    // ~350 vertices: large enough for multiple waves on the tiny device
    // and both thread- and block-per-vertex kernels, small enough that
    // the 80-config sweep stays fast.
    let g = erdos_renyi(350, 1200, 17);
    for probe in ProbeStrategy::all() {
        for mode in swap_modes() {
            for (dname, device) in [
                ("tiny", DeviceConfig::tiny()),
                ("a100", DeviceConfig::a100()),
            ] {
                for vt in [ValueType::F32, ValueType::F64] {
                    let cfg = LpaConfig::default()
                        .with_probe(probe)
                        .with_swap_mode(mode)
                        .with_device(device)
                        .with_value_type(vt);
                    let serial = lpa_gpu(&g, &cfg.with_threads(1));
                    let parallel = lpa_gpu(&g, &cfg.with_threads(4));
                    let ctx = format!("probe={probe:?} mode={mode:?} dev={dname} vt={vt:?}");
                    assert_eq!(serial.labels, parallel.labels, "labels: {ctx}");
                    assert_eq!(serial.stats, parallel.stats, "stats: {ctx}");
                    assert_eq!(
                        serial.staged_collisions, parallel.staged_collisions,
                        "staged_collisions: {ctx}"
                    );
                    assert_eq!(serial.iterations, parallel.iterations, "iterations: {ctx}");
                    assert_eq!(
                        serial.changed_per_iter, parallel.changed_per_iter,
                        "changed_per_iter: {ctx}"
                    );
                    assert_eq!(serial.converged, parallel.converged, "converged: {ctx}");
                }
            }
        }
    }
}

#[test]
fn odd_thread_counts_match_too() {
    // chunking must be order-preserving for any thread count, not just
    // powers of two
    let g = erdos_renyi(300, 900, 23);
    let cfg = LpaConfig::default().with_device(DeviceConfig::tiny());
    let base = lpa_gpu(&g, &cfg.with_threads(1));
    for threads in [2, 3, 5, 8, 64] {
        let r = lpa_gpu(&g, &cfg.with_threads(threads));
        assert_eq!(base.labels, r.labels, "threads={threads}");
        assert_eq!(base.stats, r.stats, "threads={threads}");
        assert_eq!(
            base.staged_collisions, r.staged_collisions,
            "threads={threads}"
        );
    }
}

#[test]
fn frontier_mode_is_identical_across_thread_counts() {
    // Worklist scheduling adds host-side state (worklists, parked set,
    // shadow flags) fed from per-shard harvests; the harvest merge is in
    // lane-chunk order, so every observable — including the frontier's
    // per-iteration scanned counts — must stay bit-identical at any
    // thread count, on both a single-wave and a multi-wave device.
    let g = erdos_renyi(350, 1200, 17);
    for (dname, device) in [
        ("tiny", DeviceConfig::tiny()),
        ("a100", DeviceConfig::a100()),
    ] {
        for mode in swap_modes() {
            let cfg = LpaConfig::default()
                .with_device(device)
                .with_swap_mode(mode)
                .with_frontier(true);
            let serial = lpa_gpu(&g, &cfg.with_threads(1));
            for threads in [3, 4] {
                let parallel = lpa_gpu(&g, &cfg.with_threads(threads));
                let ctx = format!("dev={dname} mode={mode:?} threads={threads}");
                assert_eq!(serial.labels, parallel.labels, "labels: {ctx}");
                assert_eq!(serial.stats, parallel.stats, "stats: {ctx}");
                assert_eq!(
                    serial.scanned_per_iter, parallel.scanned_per_iter,
                    "scanned_per_iter: {ctx}"
                );
                assert_eq!(
                    serial.changed_per_iter, parallel.changed_per_iter,
                    "changed_per_iter: {ctx}"
                );
            }
        }
    }
}

#[test]
fn native_frontier_is_identical_across_thread_counts() {
    // The native backend's per-thread worklists are merged and
    // deduplicated deterministically, so `--threads N` stays bit-identical
    // to the serial run in frontier mode too.
    use nu_lpa::core::lpa_native;
    let g = erdos_renyi(350, 1200, 19);
    for mode in swap_modes() {
        let cfg = LpaConfig::default()
            .with_swap_mode(mode)
            .with_frontier(true);
        let serial = lpa_native(&g, &cfg.with_threads(1));
        for threads in [2, 3, 4, 7] {
            let parallel = lpa_native(&g, &cfg.with_threads(threads));
            let ctx = format!("mode={mode:?} threads={threads}");
            assert_eq!(serial.labels, parallel.labels, "labels: {ctx}");
            assert_eq!(
                serial.changed_per_iter, parallel.changed_per_iter,
                "changed_per_iter: {ctx}"
            );
            assert_eq!(
                serial.scanned_per_iter, parallel.scanned_per_iter,
                "scanned_per_iter: {ctx}"
            );
        }
    }
}

#[test]
fn trace_streams_are_identical_across_thread_counts() {
    // Every trace event — spans, counters, per-wave probe and divergence
    // histograms, in order — must match the serial run exactly.
    let g = erdos_renyi(300, 900, 29);
    let cfg = LpaConfig::default().with_device(DeviceConfig::tiny());
    let mut serial = RecordingSink::new();
    let mut parallel = RecordingSink::new();
    let a = lpa_gpu_traced(&g, &cfg.with_threads(1), &mut serial);
    let b = lpa_gpu_traced(&g, &cfg.with_threads(4), &mut parallel);
    assert_eq!(a.labels, b.labels);
    assert!(!serial.events.is_empty(), "trace should record events");
    assert_eq!(serial.events, parallel.events);
    assert_eq!(serial.hists, parallel.hists);
}

/// A multi-threaded config under the hazard checker must (a) stay clean
/// and (b) still produce the single-threaded answer — the scheduler falls
/// back to serial execution while a checker is installed so that hook
/// callbacks arrive in deterministic lane order.
#[cfg(feature = "sancheck")]
#[test]
fn parallel_config_is_sancheck_neutral() {
    use nu_lpa::sancheck::{install, uninstall, CheckerConfig};

    let g = erdos_renyi(250, 750, 31);
    let cfg = LpaConfig::default().with_device(DeviceConfig::tiny());
    let base = lpa_gpu(&g, &cfg.with_threads(1));
    install(CheckerConfig::default());
    let watched = lpa_gpu(&g, &cfg.with_threads(4));
    let report = uninstall().expect("checker was installed");
    assert!(report.is_clean(), "{}", report.render());
    assert!(report.accesses > 0, "checker saw no traffic");
    assert_eq!(base.labels, watched.labels);
    assert_eq!(base.stats, watched.stats);
    assert_eq!(base.staged_collisions, watched.staged_collisions);
}
